//! The batch engine: scheduling, amortised construction, caching, QoS.
//!
//! [`BatchEngine::run_batch`] serves a whole batch of [`BettiJob`]s
//! through three stages:
//!
//! 1. **Cache + dedup.** Each job's content fingerprint is looked up in
//!    the LRU result cache and duplicate jobs *within* the batch
//!    collapse onto one computation. Every fingerprint match is verified
//!    against the full request ([`BettiJob::same_request`]), so a hash
//!    collision means a recompute, never a wrong answer.
//! 2. **Amortised construction, lazily.** The first `(job, ε, dim)`
//!    unit to touch a job builds its **Laplacian filtration arena**
//!    once at the grid's largest ε
//!    (`tda::laplacian_filtration::LaplacianFiltration`): neighbour
//!    search, flag expansion, boundary walking, and triplet sorting run
//!    once per job, and every ε-unit then reads its Δ_k as a *prefix*
//!    of the activation-sorted arena — no per-slice complexes are
//!    materialised at all. The arena lives in a per-job slot that is
//!    built by the first unit and **freed by the last**, so it stays
//!    hot in cache for the estimates that follow and peak memory tracks
//!    the jobs in flight, not the batch size
//!    (`EngineStats::arena_bytes_peak` reports the high-water mark).
//! 3. **Estimate (one unit per `(job, ε, dim)`).** Units fan out at the
//!    finest granularity the request API exposes (a single-dimension
//!    `qtda_core::query::Query`), pulled from a shared counter by
//!    `workers` threads — work-stealing-style dynamic assignment, so
//!    one slow job cannot idle the rest of the pool behind it.
//!
//! Every estimator seed is derived from the batch seed and job content
//! ([`crate::seed`]), so results are **bit-identical** across worker
//! counts, completion orders, batch compositions, and cache states.
//!
//! Serving-oriented extensions ride on the same machinery:
//!
//! * **Incremental completion.** [`BatchEngine::run_batch_streaming`]
//!   announces every `(job, ε)` slice through a [`SliceSink`] the moment
//!   its last dimension unit finishes, so a streaming front-end (the
//!   `qtda-service` crate) can deliver results while the rest of the
//!   batch is still computing. What streams is bit-identical to what
//!   [`BatchEngine::run_batch`] returns.
//! * **Size-based dispatch.** [`EngineConfig::dispatch`] routes each
//!   unit to the statevector / dense / sparse backend by `|S_k|`
//!   (`qtda_core::pipeline::DispatchPolicy`); the default derives the
//!   classic dense/sparse split from each job's `sparse_threshold`.
//! * **Persistent homology.** A [`BettiJob::persistence`] job's units
//!   additionally read exact persistent-Betti rows β_k(ε_i, ε_j) off
//!   the shared arena (each ε against every earlier grid scale), and
//!   the last scale's units reduce per-dimension persistence diagrams —
//!   so [`SliceResult::persistence`] streams with the slice and
//!   [`JobResult::diagrams`] rides the same cache entry. All of it is
//!   integer/interval data pinned bit-identical to the classical
//!   barcode reduction, and `qtda_persist_*` counters track the spend.
//! * **Quality of service.** [`BatchEngine::run_batch_qos`] accepts a
//!   [`QosPolicy`] per job ([`JobRequest`]): the unit queue is ordered
//!   by [`Priority`] class (Interactive first, Bulk last; ties keep the
//!   plain-batch interleaving, so an all-[`Priority::Normal`] batch
//!   schedules exactly like [`BatchEngine::run_batch`]), and each
//!   job's deadline/cancellation flags are checked at **unit
//!   boundaries**: once every request interested in a computed job
//!   (its submitter plus in-batch duplicates) asks to abort, the job's
//!   remaining units are skipped, its arena is freed through the normal
//!   last-unit path, and **nothing is inserted into the LRU cache**
//!   (no partial results, and — regression-pinned — no doorkeeper
//!   sighting either, so a cancelled probe never "pre-admits" a
//!   fingerprint). Aborted jobs return [`JobOutcome::Aborted`];
//!   priorities and aborts never change a *completed* result's bits.

use crate::cache::LruCache;
use crate::job::BettiJob;
use crate::seed::{job_seed, slice_seed};
use qtda_core::estimator::BettiEstimate;
use qtda_core::persist::{self, PersistenceDiagrams, PersistencePair, SlicePersistence};
use qtda_core::pipeline::DispatchPolicy;
use qtda_core::query::{AbortReason, BettiRequest, Priority, QosPolicy, SpectrumShare};
use qtda_obs::{Counter, EventKind, FlightRecorder, Gauge, MetricsRegistry, Tracer};
use qtda_tda::laplacian_filtration::LaplacianFiltration;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One request as `run_batch_inner` sees it: the job, its QoS policy,
/// the (possibly disabled) per-ticket tracer, and the service-assigned
/// ticket id (0 for direct engine callers).
type Submission<'a> = (&'a BettiJob, &'a QosPolicy, &'a Tracer, u64);

/// Records a per-request stage span when the `obs` feature is on. The
/// disabled-`Tracer` check inside makes an untraced request cost one
/// branch; with the feature off the whole call compiles away.
#[cfg(feature = "obs")]
fn record_stage(trace: &Tracer, name: &str, start: Instant, end: Instant) {
    trace.record_span(name, start, end);
}

#[cfg(not(feature = "obs"))]
fn record_stage(_trace: &Tracer, _name: &str, _start: Instant, _end: Instant) {}

/// Stamps one flight-recorder event when the `obs` feature is on. The
/// detail closure only runs against a live recorder, so hot paths pay
/// one branch (and no allocation) when recording is off; with the
/// feature off the whole call compiles away.
#[cfg(feature = "obs")]
fn record_event(
    recorder: &FlightRecorder,
    kind: EventKind,
    ticket: u64,
    fingerprint: u64,
    detail: impl FnOnce() -> String,
) {
    if recorder.is_enabled() {
        recorder.record(kind, ticket, fingerprint, detail());
    }
}

#[cfg(not(feature = "obs"))]
fn record_event(
    _recorder: &FlightRecorder,
    _kind: EventKind,
    _ticket: u64,
    _fingerprint: u64,
    _detail: impl FnOnce() -> String,
) {
}

/// Engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads for both stages (`0` = one per available core).
    /// Results do not depend on this — only throughput does.
    pub workers: usize,
    /// Root of every derived estimator seed (see [`crate::seed`]).
    pub batch_seed: u64,
    /// LRU result-cache entries to retain across batches (`0` disables).
    pub cache_capacity: usize,
    /// Gate cache admission behind a doorkeeper: a fingerprint is
    /// admitted into the LRU only on its *second* sighting, so one-shot
    /// sliding-window traffic cannot flush entries that earned their
    /// place by repeating (see [`LruCache::with_doorkeeper`]). Results
    /// never depend on this — only hit rates do.
    pub cache_doorkeeper: bool,
    /// Size-based backend routing for every `(job, ε, dim)` unit. `None`
    /// (the default) derives the classic dense/sparse split from each
    /// job's own `sparse_threshold`; `Some` overrides all jobs with one
    /// engine-wide [`DispatchPolicy`] (including the gate-level
    /// statevector tier for the smallest complexes). Replaying a slice
    /// through the one-shot pipeline then needs the matching
    /// `PipelineConfig` routing fields.
    pub dispatch: Option<DispatchPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            batch_seed: 0,
            cache_capacity: 256,
            cache_doorkeeper: false,
            dispatch: None,
        }
    }
}

/// One QoS-carrying submission: a [`BettiJob`] plus the [`QosPolicy`]
/// governing its scheduling class, deadline, and cancellation. The
/// request shape [`BatchEngine::run_batch_qos`] consumes — the
/// engine-level counterpart of a `qtda_core::query::BettiRequest`
/// (owned job content instead of borrows, because requests outlive
/// their submitters in a serving queue).
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The job to serve.
    pub job: BettiJob,
    /// Its quality-of-service policy.
    pub qos: QosPolicy,
    /// Per-request stage tracer. Disabled by default; attach a live
    /// [`Tracer`] with [`JobRequest::with_trace`] and the engine
    /// records `cache_probe` / `arena_build` / `solve` spans into it
    /// as the request moves through the batch. Tracing never touches
    /// seeds or scheduling order — results are bit-identical with it
    /// on or off.
    pub trace: Tracer,
    /// The submitter's ticket id, carried into flight-recorder events
    /// so a journal dump can be joined back to the service's tickets.
    /// `0` (the default) means "no ticket" — direct engine callers.
    pub ticket: u64,
}

impl From<BettiJob> for JobRequest {
    fn from(job: BettiJob) -> Self {
        JobRequest { job, qos: QosPolicy::default(), trace: Tracer::disabled(), ticket: 0 }
    }
}

impl JobRequest {
    /// A request under the default (Normal, never-aborting) policy.
    pub fn new(job: BettiJob) -> Self {
        job.into()
    }

    /// A request under an explicit policy.
    pub fn with_qos(job: BettiJob, qos: QosPolicy) -> Self {
        JobRequest { job, qos, trace: Tracer::disabled(), ticket: 0 }
    }

    /// Attaches a per-request stage tracer.
    pub fn with_trace(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches the submitting ticket's id (flight-recorder metadata;
    /// never influences scheduling or results).
    pub fn with_ticket(mut self, ticket: u64) -> Self {
        self.ticket = ticket;
        self
    }
}

/// How one request ended: the assembled result, or the abort that
/// terminated it. A request is aborted when its own policy asked for it
/// (cancellation is honoured even if a duplicate kept the shared
/// computation alive); a *computed job* is only abandoned engine-side
/// once every interested request has aborted.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The request completed; slices are bit-identical to a plain
    /// [`BatchEngine::run_batch`] of the same job and batch seed.
    Completed(Arc<JobResult>),
    /// The request was aborted before (or instead of) completion.
    Aborted(AbortReason),
}

impl JobOutcome {
    /// The result, if the request completed.
    pub fn result(&self) -> Option<&Arc<JobResult>> {
        match self {
            JobOutcome::Completed(result) => Some(result),
            JobOutcome::Aborted(_) => None,
        }
    }

    /// The abort reason, if the request aborted.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Aborted(reason) => Some(*reason),
        }
    }

    /// Unwraps the completed result.
    ///
    /// # Panics
    /// If the request was aborted.
    pub fn expect_completed(self) -> Arc<JobResult> {
        match self {
            JobOutcome::Completed(result) => result,
            JobOutcome::Aborted(reason) => {
                panic!("request aborted ({reason}) where completion was required")
            }
        }
    }
}

/// One ε-slice of a served job.
#[derive(Clone, Debug)]
pub struct SliceResult {
    /// The grouping scale this slice was evaluated at.
    pub epsilon: f64,
    /// The estimator seed the engine derived for this slice. Replaying
    /// the one-shot pipeline with this seed reproduces `estimates`
    /// bit for bit.
    pub seed: u64,
    /// Per-dimension estimates β̃_0 … β̃_K.
    pub estimates: Vec<BettiEstimate>,
    /// Classical Betti numbers for the same dimensions.
    pub classical: Vec<usize>,
    /// The slice's persistent-homology payload: its row of the
    /// persistent-Betti triangle per dimension (`row[i] = β_k(ε_i,
    /// ε_j)` over the grid prefix). `Some` only for
    /// [`BettiJob::persistence`] jobs — exact integers, bit-identical
    /// across worker counts and cache states like everything else.
    pub persistence: Option<SlicePersistence>,
}

impl SliceResult {
    /// Estimates rounded to whole Betti numbers.
    pub fn rounded(&self) -> Vec<usize> {
        self.estimates.iter().map(BettiEstimate::rounded).collect()
    }

    /// Raw corrected estimates — the per-scale feature vector.
    pub fn features(&self) -> Vec<f64> {
        self.estimates.iter().map(|e| e.corrected).collect()
    }
}

/// A served job: one [`SliceResult`] per requested ε, in grid order.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's content fingerprint (cache key).
    pub fingerprint: u64,
    /// Root of this job's seed stream.
    pub job_seed: u64,
    /// Per-ε results in the order the grid requested them.
    pub slices: Vec<SliceResult>,
    /// Per-dimension persistence diagrams of the job's filtration,
    /// computed once from the shared arena (at the grid's largest
    /// scale). `Some` only for [`BettiJob::persistence`] jobs with a
    /// non-empty grid.
    pub diagrams: Option<PersistenceDiagrams>,
}

impl JobResult {
    /// All slices' features concatenated (grid-major) — the row a
    /// downstream classifier consumes.
    pub fn features(&self) -> Vec<f64> {
        self.slices.iter().flat_map(SliceResult::features).collect()
    }
}

/// Monotone serving counters (since engine construction), except the
/// `arena_bytes_live` gauge. A view over the engine's
/// [`MetricsRegistry`] (`qtda_engine_*` metrics) — engines built over
/// a shared registry with [`BatchEngine::with_metrics`] share the
/// cells, and an engine over a *disabled* registry reads all zeros.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Jobs requested across all batches.
    pub jobs_served: u64,
    /// Batches run (`run_batch`/`run_batch_streaming`/`…_qos` calls).
    pub batches_served: u64,
    /// Jobs answered from the LRU cache.
    pub cache_hits: u64,
    /// Jobs that looked up the cache and found nothing usable.
    pub cache_misses: u64,
    /// Result-cache entries evicted under capacity pressure.
    pub cache_evictions: u64,
    /// Jobs collapsed onto an identical job in the same batch.
    pub deduplicated: u64,
    /// Jobs actually computed.
    pub computed_jobs: u64,
    /// `(job, ε, dim)` estimation units executed (cancelled units are
    /// counted in `units_cancelled` instead).
    pub units_executed: u64,
    /// Units scheduled for the most recent batch (micro-batch size
    /// telemetry; includes any later cancelled).
    pub units_last_batch: u64,
    /// Units skipped at the boundary check because their job had been
    /// cancelled or had exceeded every interested deadline.
    pub units_cancelled: u64,
    /// Requests that ended [`JobOutcome::Aborted`] with
    /// [`AbortReason::Cancelled`].
    pub jobs_cancelled: u64,
    /// Requests that ended [`JobOutcome::Aborted`] with
    /// [`AbortReason::DeadlineExceeded`].
    pub jobs_deadline_expired: u64,
    /// Requests completed in the [`Priority::Interactive`] class.
    pub served_interactive: u64,
    /// Requests completed in the [`Priority::Normal`] class (all of
    /// plain `run_batch`'s traffic lands here).
    pub served_normal: u64,
    /// Requests completed in the [`Priority::Bulk`] class.
    pub served_bulk: u64,
    /// Laplacian filtration arenas constructed (more than
    /// `computed_jobs` only when workers raced on a job's first touch).
    pub arenas_built: u64,
    /// `(job, ε, dim)` units whose Δ_k came as a prefix read of an
    /// arena another unit had already built — the amortisation the
    /// incremental ε-sweep buys.
    pub slices_assembled_incrementally: u64,
    /// High-water mark of concurrently resident arena bytes (peak
    /// amortisation footprint; arenas are freed by their job's last
    /// unit — executed *or cancelled*).
    pub arena_bytes_peak: u64,
    /// Arena bytes resident right now — a gauge, not a counter. Zero
    /// between batches: every arena is freed by its job's last unit,
    /// including the units an abort skipped.
    pub arena_bytes_live: u64,
}

impl EngineStats {
    /// Mean executed `(job, ε, dim)` units per batch served so far.
    pub fn mean_units_per_batch(&self) -> f64 {
        if self.batches_served == 0 {
            0.0
        } else {
            self.units_executed as f64 / self.batches_served as f64
        }
    }
}

/// A streamed announcement out of a running batch. Emitted from worker
/// threads in completion order; after a job aborts, a slice whose last
/// unit was already in flight may still race out behind the
/// [`SliceEvent::Aborted`] — consumers treat `Aborted` as terminal and
/// drop stragglers (the service's `Ticket` does).
#[derive(Clone, Debug)]
pub enum SliceEvent {
    /// The `slice_index`-th ε of job `job_index` finished all its
    /// homology dimensions — emitted the moment the slice's last
    /// `(job, ε, dim)` unit completes, long before the batch returns,
    /// and also (from the calling thread, before any unit runs) for
    /// every slice answered by the cache. Duplicate jobs receive their
    /// representative's slices under their own `job_index`.
    Slice {
        /// Index of the job in the submitted batch.
        job_index: usize,
        /// Index of the slice in that job's ε-grid.
        slice_index: usize,
        /// The completed slice — bit-identical to the corresponding
        /// entry of the final [`JobResult`].
        result: SliceResult,
    },
    /// Job `job_index` was aborted; no further slices will be computed
    /// for it. Emitted once per aborted request the moment the engine
    /// abandons the computation (requests aborted at delivery time —
    /// e.g. cancelled while a duplicate kept the job alive — surface
    /// through [`JobOutcome::Aborted`] instead).
    Aborted {
        /// Index of the job in the submitted batch.
        job_index: usize,
        /// Why it aborted.
        reason: AbortReason,
    },
}

/// The incremental-completion hook: called as slices finish (or jobs
/// abort). Must be `Sync` — worker threads invoke it concurrently, in
/// completion order (use the slice index to reorder).
pub type SliceSink<'a> = dyn Fn(SliceEvent) + Sync + 'a;

/// The batched multi-cloud Betti-serving engine. Construct once, call
/// [`Self::run_batch`] (or the QoS-aware [`Self::run_batch_qos`]) per
/// request batch; the result cache persists across calls.
pub struct BatchEngine {
    config: EngineConfig,
    cache: Mutex<LruCache<Arc<CachedJob>>>,
    registry: Arc<MetricsRegistry>,
    metrics: EngineMetrics,
    recorder: Arc<FlightRecorder>,
}

/// The engine's handles into its [`MetricsRegistry`] — the storage
/// behind [`EngineStats`]. Every handle is a single atomic cell; the
/// hot path never takes a lock after construction.
struct EngineMetrics {
    jobs_served: Counter,
    batches_served: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Gauge,
    deduplicated: Counter,
    computed_jobs: Counter,
    units_executed: Counter,
    units_last_batch: Gauge,
    units_cancelled: Counter,
    jobs_cancelled: Counter,
    jobs_deadline_expired: Counter,
    served_by_class: [Counter; 3],
    arenas_built: Counter,
    slices_assembled_incrementally: Counter,
    arena_bytes_live: Gauge,
    arena_bytes_peak: Gauge,
    solve_matvecs: Counter,
    lanczos_iterations: Counter,
    lanczos_restarts: Counter,
    persist_units: Counter,
    persist_rows: Counter,
    persist_pairs: Counter,
}

impl EngineMetrics {
    /// Registers every `qtda_engine_*` metric under the given extra
    /// label set (e.g. `[("shard", "3")]` from a cluster tier, so N
    /// engines publish into one shared registry as distinct per-shard
    /// series instead of summing into one cell). The class label of
    /// `qtda_engine_served_total` composes after the extra labels.
    fn register_with(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        let counter = |name: &str| registry.counter_with(name, labels);
        let gauge = |name: &str| registry.gauge_with(name, labels);
        let served = |class: &'static str| {
            let mut with_class: Vec<(&str, &str)> = labels.to_vec();
            with_class.push(("class", class));
            registry.counter_with("qtda_engine_served_total", &with_class)
        };
        EngineMetrics {
            jobs_served: counter("qtda_engine_jobs_served_total"),
            batches_served: counter("qtda_engine_batches_total"),
            cache_hits: counter("qtda_engine_cache_hits_total"),
            cache_misses: counter("qtda_engine_cache_misses_total"),
            cache_evictions: gauge("qtda_engine_cache_evictions"),
            deduplicated: counter("qtda_engine_deduplicated_total"),
            computed_jobs: counter("qtda_engine_computed_jobs_total"),
            units_executed: counter("qtda_engine_units_executed_total"),
            units_last_batch: gauge("qtda_engine_units_last_batch"),
            units_cancelled: counter("qtda_engine_units_cancelled_total"),
            jobs_cancelled: counter("qtda_engine_jobs_cancelled_total"),
            jobs_deadline_expired: counter("qtda_engine_jobs_deadline_expired_total"),
            served_by_class: [served("interactive"), served("normal"), served("bulk")],
            arenas_built: counter("qtda_engine_arenas_built_total"),
            slices_assembled_incrementally: counter("qtda_engine_slices_incremental_total"),
            arena_bytes_live: gauge("qtda_engine_arena_bytes_live"),
            arena_bytes_peak: gauge("qtda_engine_arena_bytes_peak"),
            solve_matvecs: counter("qtda_engine_solve_matvecs_total"),
            lanczos_iterations: counter("qtda_engine_lanczos_iterations_total"),
            lanczos_restarts: counter("qtda_engine_lanczos_restarts_total"),
            // Persistence serving: units that computed a persistent-
            // Betti row, total row entries (β_k(ε_i, ε_j) reads), and
            // total diagram pairs emitted.
            persist_units: counter("qtda_persist_units_total"),
            persist_rows: counter("qtda_persist_rows_total"),
            persist_pairs: counter("qtda_persist_pairs_total"),
        }
    }
}

/// Stage 1's in-batch dedup plan over the cache-missed requests: the
/// first sighting of each distinct job becomes a **miss** (it will be
/// computed) and every later identical job a duplicate pointing at its
/// representative. A fingerprint match alone is never trusted — a
/// candidate representative must match the full canonical content
/// stream ([`BettiJob::same_request`]), so a forged or colliding
/// fingerprint falls back to independent execution instead of borrowing
/// another request's results (the same verification the LRU applies on
/// cache hits; with cluster routing keyed by fingerprint, colliding
/// jobs also land in one batch on one shard, which is exactly where
/// this check catches them). Returns `(misses, dup_of)`, both indexed
/// like the full batch.
fn plan_dedup(
    jobs: &[&BettiJob],
    fingerprints: &[u64],
    uncached: &[usize],
) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut misses: Vec<usize> = Vec::new();
    let mut dup_of: Vec<Option<usize>> = vec![None; jobs.len()];
    // fp → miss indices sharing it (more than one only on collision).
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in uncached {
        let candidates = seen.entry(fingerprints[i]).or_default();
        if let Some(&rep) = candidates.iter().find(|&&j| jobs[j].same_request(jobs[i])) {
            dup_of[i] = Some(rep);
        } else {
            candidates.push(i);
            misses.push(i);
        }
    }
    (misses, dup_of)
}

impl BatchEngine {
    /// An engine with the given configuration and its own private
    /// [`MetricsRegistry`].
    pub fn new(config: EngineConfig) -> Self {
        Self::with_metrics(config, Arc::new(MetricsRegistry::new()))
    }

    /// An engine publishing its serving counters into a caller-owned
    /// registry (the service shares one registry across its whole
    /// stack). Engines sharing a registry share the `qtda_engine_*`
    /// metric cells — their counts add.
    pub fn with_metrics(config: EngineConfig, registry: Arc<MetricsRegistry>) -> Self {
        Self::with_observability(config, registry, None)
    }

    /// [`Self::with_metrics`] plus a caller-owned [`FlightRecorder`]:
    /// the engine stamps `cache_hit` / `unit_done` / `cancel` /
    /// `deadline_expired` / `abort` events into it as requests move
    /// through batches (the service shares one recorder across its
    /// whole stack, so engine events join service events by job
    /// fingerprint). `None` disables engine-side event recording.
    pub fn with_observability(
        config: EngineConfig,
        registry: Arc<MetricsRegistry>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Self {
        Self::with_observability_labels(config, registry, recorder, &[])
    }

    /// [`Self::with_observability`] with extra metric labels applied to
    /// every `qtda_engine_*` series this engine registers. This is how
    /// a cluster tier gives each of its N shard engines a distinct
    /// `shard=` label inside **one** shared registry: same family
    /// names, disjoint label sets, so the exposition shows per-shard
    /// series and [`Self::stats`] still reads only this engine's own
    /// cells. An empty label set is exactly
    /// [`Self::with_observability`].
    pub fn with_observability_labels(
        config: EngineConfig,
        registry: Arc<MetricsRegistry>,
        recorder: Option<Arc<FlightRecorder>>,
        labels: &[(&str, &str)],
    ) -> Self {
        let cache = if config.cache_doorkeeper {
            // Track first sightings for several cache generations so
            // a repeat separated by a scan still proves itself.
            LruCache::with_doorkeeper(config.cache_capacity, config.cache_capacity.max(1) * 8)
        } else {
            LruCache::new(config.cache_capacity)
        };
        let metrics = EngineMetrics::register_with(&registry, labels);
        let recorder = recorder.unwrap_or_else(|| Arc::new(FlightRecorder::disabled()));
        BatchEngine { config, cache: Mutex::new(cache), registry, metrics, recorder }
    }

    /// An engine with [`EngineConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The registry holding this engine's `qtda_engine_*` metrics —
    /// snapshot it for the Prometheus/JSON exposition.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The flight recorder this engine stamps events into (a disabled
    /// recorder unless one was attached via
    /// [`Self::with_observability`]).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// A snapshot of the serving counters ([`EngineStats`] is a view
    /// over the engine's [`MetricsRegistry`]).
    pub fn stats(&self) -> EngineStats {
        let evictions = self.cache.lock().expect("cache poisoned").evictions();
        self.metrics.cache_evictions.set(evictions);
        EngineStats {
            jobs_served: self.metrics.jobs_served.get(),
            batches_served: self.metrics.batches_served.get(),
            cache_hits: self.metrics.cache_hits.get(),
            cache_misses: self.metrics.cache_misses.get(),
            cache_evictions: evictions,
            deduplicated: self.metrics.deduplicated.get(),
            computed_jobs: self.metrics.computed_jobs.get(),
            units_executed: self.metrics.units_executed.get(),
            units_last_batch: self.metrics.units_last_batch.get(),
            units_cancelled: self.metrics.units_cancelled.get(),
            jobs_cancelled: self.metrics.jobs_cancelled.get(),
            jobs_deadline_expired: self.metrics.jobs_deadline_expired.get(),
            served_interactive: self.metrics.served_by_class[0].get(),
            served_normal: self.metrics.served_by_class[1].get(),
            served_bulk: self.metrics.served_by_class[2].get(),
            arenas_built: self.metrics.arenas_built.get(),
            slices_assembled_incrementally: self.metrics.slices_assembled_incrementally.get(),
            arena_bytes_peak: self.metrics.arena_bytes_peak.get(),
            arena_bytes_live: self.metrics.arena_bytes_live.get(),
        }
    }

    /// Serves a single job (a one-element [`Self::run_batch`]).
    pub fn run_job(&self, job: &BettiJob) -> Arc<JobResult> {
        self.run_batch(std::slice::from_ref(job)).pop().expect("one job in, one result out")
    }

    /// Serves a batch, returning one result per job in input order.
    /// Identical jobs are computed once, whether the duplicate sits in
    /// this batch or in a previous one still cached. Every fingerprint
    /// match is verified against the full request content
    /// ([`BettiJob::same_request`]), so a 64-bit hash collision degrades
    /// to a recompute, never to another request's results.
    ///
    /// This is [`Self::run_batch_qos`] under the default (Normal class,
    /// never-aborting) policy — the FIFO reference the QoS determinism
    /// tests pin against.
    pub fn run_batch(&self, jobs: &[BettiJob]) -> Vec<Arc<JobResult>> {
        let default_qos = QosPolicy::default();
        let no_trace = Tracer::disabled();
        let refs: Vec<Submission<'_>> =
            jobs.iter().map(|j| (j, &default_qos, &no_trace, 0)).collect();
        self.run_batch_inner(&refs, None).into_iter().map(JobOutcome::expect_completed).collect()
    }

    /// [`Self::run_batch`] with an incremental-completion hook: `sink`
    /// is called once per `(job, slice)` the moment the slice's last
    /// `(job, ε, dim)` unit finishes — cache-answered slices fire before
    /// any unit runs, duplicates fire when their representative's slice
    /// completes. The streamed [`SliceEvent`]s carry exactly the
    /// [`SliceResult`]s of the returned [`JobResult`]s (bit-identical;
    /// determinism is per-slice content, so *what* streams never depends
    /// on worker count — only the completion order does).
    pub fn run_batch_streaming(
        &self,
        jobs: &[BettiJob],
        sink: &SliceSink<'_>,
    ) -> Vec<Arc<JobResult>> {
        let default_qos = QosPolicy::default();
        let no_trace = Tracer::disabled();
        let refs: Vec<Submission<'_>> =
            jobs.iter().map(|j| (j, &default_qos, &no_trace, 0)).collect();
        self.run_batch_inner(&refs, Some(sink))
            .into_iter()
            .map(JobOutcome::expect_completed)
            .collect()
    }

    /// Serves a batch of QoS-carrying requests: units are scheduled in
    /// [`Priority`] order and each request's deadline/cancellation is
    /// checked at unit boundaries (see the module docs for the exact
    /// abort semantics). Completed outcomes are **bit-identical** to
    /// [`Self::run_batch`] of the same jobs and batch seed at any
    /// worker count — QoS shapes scheduling and early exits, never
    /// values.
    pub fn run_batch_qos(&self, requests: &[JobRequest]) -> Vec<JobOutcome> {
        let refs: Vec<Submission<'_>> =
            requests.iter().map(|r| (&r.job, &r.qos, &r.trace, r.ticket)).collect();
        self.run_batch_inner(&refs, None)
    }

    /// [`Self::run_batch_qos`] with the incremental-completion hook:
    /// completed slices stream as [`SliceEvent::Slice`], and a request
    /// abandoned mid-batch fires one final [`SliceEvent::Aborted`].
    pub fn run_batch_streaming_qos(
        &self,
        requests: &[JobRequest],
        sink: &SliceSink<'_>,
    ) -> Vec<JobOutcome> {
        let refs: Vec<Submission<'_>> =
            requests.iter().map(|r| (&r.job, &r.qos, &r.trace, r.ticket)).collect();
        self.run_batch_inner(&refs, Some(sink))
    }

    fn run_batch_inner(
        &self,
        requests: &[Submission<'_>],
        sink: Option<&SliceSink<'_>>,
    ) -> Vec<JobOutcome> {
        self.metrics.jobs_served.add(requests.len() as u64);
        self.metrics.batches_served.inc();
        // Persistence jobs read β_k(ε_i, ε_j) over grid prefixes, which
        // only makes sense on an ascending grid — reject up front,
        // before any cache or unit work.
        for (job, ..) in requests {
            if job.persistence {
                persist::assert_ascending_grid(&job.epsilons);
            }
        }
        let fingerprints: Vec<u64> = requests.iter().map(|(job, ..)| job.fingerprint()).collect();

        // Stage 1: verified cache lookups + in-batch dedup. `misses`
        // keeps the first job index per distinct uncached request;
        // `dup_of[i]` points a duplicate at its representative miss.
        let mut results: Vec<Option<Arc<JobResult>>> = vec![None; requests.len()];
        let mut uncached: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("cache poisoned");
            for (i, &fp) in fingerprints.iter().enumerate() {
                let probe_started = Instant::now();
                let cached = cache.get(fp).and_then(|entry| {
                    entry.job.same_request(requests[i].0).then(|| Arc::clone(&entry.result))
                });
                record_stage(requests[i].2, "cache_probe", probe_started, Instant::now());
                if let Some(result) = cached {
                    self.metrics.cache_hits.inc();
                    record_event(&self.recorder, EventKind::CacheHit, requests[i].3, fp, || {
                        format!("slices={}", result.slices.len())
                    });
                    results[i] = Some(result);
                } else {
                    self.metrics.cache_misses.inc();
                    uncached.push(i);
                }
            }
        }
        let jobs: Vec<&BettiJob> = requests.iter().map(|(job, ..)| *job).collect();
        let (misses, dup_of) = plan_dedup(&jobs, &fingerprints, &uncached);
        self.metrics.deduplicated.add(dup_of.iter().filter(|d| d.is_some()).count() as u64);
        self.metrics.computed_jobs.add(misses.len() as u64);

        // Per computed job: every request index interested in it (the
        // submitter plus its in-batch duplicates). Drives both slice
        // fan-out and the all-parties-aborted check.
        let parties: Vec<Vec<usize>> = {
            let mut parties: Vec<Vec<usize>> = misses.iter().map(|&j| vec![j]).collect();
            let miss_pos: HashMap<usize, usize> =
                misses.iter().enumerate().map(|(p, &j)| (j, p)).collect();
            for (i, dup) in dup_of.iter().enumerate() {
                if let Some(rep) = dup {
                    parties[miss_pos[rep]].push(i);
                }
            }
            parties
        };

        // Cache-answered jobs stream immediately (outside the cache
        // lock — the sink is arbitrary user code). A hit whose request
        // already cancelled gets its Aborted event instead; an expired
        // deadline does *not* discard a ready answer (best-effort
        // semantics: the deadline stops work, a hit costs none).
        if let Some(sink) = sink {
            for (i, result) in results.iter().enumerate() {
                if let Some(result) = result {
                    if requests[i].1.cancel.is_cancelled() {
                        sink(SliceEvent::Aborted { job_index: i, reason: AbortReason::Cancelled });
                        continue;
                    }
                    for (slice_index, slice) in result.slices.iter().enumerate() {
                        sink(SliceEvent::Slice {
                            job_index: i,
                            slice_index,
                            result: slice.clone(),
                        });
                    }
                }
            }
        }

        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            self.config.workers
        };

        // Stages 2+3: flatten to (job, ε, dim) units and fan out; the
        // amortised per-job construction happens lazily inside the first
        // unit that touches each job. The unit queue is **priority
        // ordered**: misses are bucketed by the best (lowest) Priority
        // among their interested requests — Interactive before Normal
        // before Bulk — and the shared counter drains the queue front to
        // back. Within a class, units are interleaved round-robin
        // across a window of `workers` jobs so that concurrent workers
        // start on *different* jobs (parallel construction instead of
        // racing to build the same one), while the window bound keeps
        // roughly `workers` jobs' slices resident at a time. With one
        // worker and one class this degenerates to the contiguous
        // per-job order, which maximises cache locality on the serial
        // path; with every job Normal (plain `run_batch`) the order is
        // exactly the historical FIFO interleaving.
        let class_of: Vec<Priority> = parties
            .iter()
            .map(|ps| ps.iter().map(|&i| requests[i].1.priority).min().unwrap_or(Priority::Normal))
            .collect();
        let dims_of: Vec<usize> =
            misses.iter().map(|&j| requests[j].0.max_homology_dim + 1).collect();
        let unit_counts: Vec<usize> = misses
            .iter()
            .zip(&dims_of)
            .map(|(&j, &dims)| requests[j].0.epsilons.len() * dims)
            .collect();
        let units = build_unit_queue(&class_of, &unit_counts, &dims_of, workers);
        self.metrics.units_last_batch.set(units.len() as u64);
        let preps: Vec<PrepSlot> = misses
            .iter()
            .map(|&j| PrepSlot {
                arena: Mutex::new(None),
                spectra: SpectrumShare::new(),
                remaining_units: AtomicUsize::new(
                    requests[j].0.epsilons.len() * (requests[j].0.max_homology_dim + 1),
                ),
                aborted: AtomicU8::new(ABORT_NONE),
            })
            .collect();
        // Streaming bookkeeping: a per-(job, ε) countdown of outstanding
        // dimensions so the slice can be announced the instant its last
        // unit lands.
        let stream_slots: Option<Vec<Vec<StreamSlot>>> = sink.map(|_| {
            misses
                .iter()
                .map(|&j| {
                    let dims = requests[j].0.max_homology_dim + 1;
                    requests[j]
                        .0
                        .epsilons
                        .iter()
                        .map(|_| StreamSlot {
                            dims: Mutex::new(vec![None; dims]),
                            remaining: AtomicUsize::new(dims),
                        })
                        .collect()
                })
                .collect()
        });
        let estimates: Vec<Option<UnitOutput>> = run_units(workers, units.len(), |u| {
            let unit = &units[u];
            let job = requests[misses[unit.prep]].0;
            let slot = &preps[unit.prep];
            // Unit-boundary QoS check, *before* any construction: a
            // job is abandoned once every interested request has
            // asked to abort (cancellation or expired deadline). The
            // first unit to observe it emits the Aborted events;
            // every skipped unit still runs the last-unit arena
            // bookkeeping below, so aborts free memory exactly like
            // completions.
            let skip = slot.aborted.load(Ordering::Acquire) != ABORT_NONE || {
                let now = Instant::now();
                let all_aborted =
                    parties[unit.prep].iter().all(|&i| requests[i].1.abort_reason(now).is_some());
                if all_aborted
                    && slot
                        .aborted
                        .compare_exchange(
                            ABORT_NONE,
                            ABORT_FLAGGED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                {
                    for &i in &parties[unit.prep] {
                        let reason =
                            requests[i].1.abort_reason(now).expect("every party reported an abort");
                        let kind = match reason {
                            AbortReason::Cancelled => EventKind::Cancel,
                            AbortReason::DeadlineExceeded => EventKind::DeadlineExpired,
                        };
                        record_event(&self.recorder, kind, requests[i].3, fingerprints[i], || {
                            "at=unit_boundary".to_string()
                        });
                        if let Some(sink) = sink {
                            sink(SliceEvent::Aborted { job_index: i, reason });
                        }
                    }
                }
                all_aborted
            };
            let result = if skip {
                self.metrics.units_cancelled.inc();
                None
            } else {
                let prebuilt =
                    slot.arena.lock().expect("prep slot poisoned").as_ref().map(Arc::clone);
                let arena = match prebuilt {
                    Some(built) => {
                        self.metrics.slices_assembled_incrementally.inc();
                        built
                    }
                    None => {
                        // Build *outside* the lock: workers landing on
                        // the same fresh job overlap on the
                        // (deterministic, identical) construction
                        // instead of idling on the mutex; the first to
                        // finish publishes, racers drop their copy.
                        // Duplicate work is bounded by the worker count
                        // and only at a job's first touch.
                        let build_started = Instant::now();
                        let built = Arc::new(LaplacianFiltration::rips(
                            &job.cloud,
                            job.max_epsilon(),
                            job.max_homology_dim + 1,
                            job.metric,
                        ));
                        let build_done = Instant::now();
                        self.metrics.arenas_built.inc();
                        let mut guard = slot.arena.lock().expect("prep slot poisoned");
                        match guard.as_ref() {
                            Some(existing) => Arc::clone(existing),
                            None => {
                                *guard = Some(Arc::clone(&built));
                                // Count only the published arena toward
                                // the resident footprint (racers' copies
                                // die right here) — and only the
                                // published build's span toward the
                                // interested tickets' traces.
                                let bytes = built.arena_bytes() as u64;
                                let live = self.metrics.arena_bytes_live.add(bytes);
                                self.metrics.arena_bytes_peak.set_max(live);
                                for &i in &parties[unit.prep] {
                                    record_stage(
                                        requests[i].2,
                                        "arena_build",
                                        build_started,
                                        build_done,
                                    );
                                }
                                built
                            }
                        }
                    }
                };
                let js = job_seed(self.config.batch_seed, fingerprints[misses[unit.prep]]);
                let epsilon = job.epsilons[unit.eps];
                let seed = slice_seed(js, epsilon);
                let config = qtda_core::estimator::EstimatorConfig { seed, ..job.estimator };
                let policy = self
                    .config
                    .dispatch
                    .unwrap_or_else(|| DispatchPolicy::from_sparse_threshold(job.sparse_threshold));
                // One unit = one single-dimension query against the
                // shared arena — the same executor every layer runs.
                // The job-wide spectrum share lets ε-units whose slice
                // resolves to the same triplet prefix reuse one block-
                // Lanczos decomposition (bit-identical by construction).
                let solve_started = Instant::now();
                let output = BettiRequest::of_filtration(&arena)
                    .at_scale(epsilon)
                    .dimension(unit.dim)
                    .estimator(config)
                    .dispatch(policy)
                    .share_spectra(&slot.spectra)
                    .build()
                    .run();
                let solve_done = Instant::now();
                for &i in &parties[unit.prep] {
                    record_stage(requests[i].2, "solve", solve_started, solve_done);
                }
                // Solver cost profiling: the unit's QuerySlice carries
                // the aggregated matvec/Lanczos counts its backends
                // recorded (empty on the dense path or with `obs` off).
                let profile = output.slices.first().map(|s| s.profile).unwrap_or_default();
                self.metrics.solve_matvecs.add(profile.matvecs);
                self.metrics.lanczos_iterations.add(profile.lanczos_iterations);
                self.metrics.lanczos_restarts.add(profile.restarts);
                let (estimate, classical) = output.unit();
                // Persistence payload: this unit's persistent-Betti row
                // (grid prefix → this ε) read from the same shared
                // arena; the last grid scale's units also reduce their
                // dimension's diagram. Exact integer/interval data —
                // worker counts and scheduling cannot move a bit.
                let unit_persist = job.persistence.then(|| {
                    let persist_started = Instant::now();
                    let row =
                        arena.persistent_betti_row(unit.dim, &job.epsilons[..=unit.eps], epsilon);
                    let bars = (unit.eps + 1 == job.epsilons.len()).then(|| arena.bars(unit.dim));
                    let persist_done = Instant::now();
                    for &i in &parties[unit.prep] {
                        record_stage(requests[i].2, "persistence", persist_started, persist_done);
                    }
                    self.metrics.persist_units.inc();
                    self.metrics.persist_rows.add(row.len() as u64);
                    if let Some(bars) = &bars {
                        self.metrics.persist_pairs.add(bars.len() as u64);
                    }
                    UnitPersist { row, bars }
                });
                let result = (estimate, classical, unit_persist);
                self.metrics.units_executed.inc();
                record_event(
                    &self.recorder,
                    EventKind::UnitDone,
                    requests[misses[unit.prep]].3,
                    fingerprints[misses[unit.prep]],
                    || format!("eps={epsilon},dim={}", unit.dim),
                );
                // Stream the slice the moment its last dimension
                // lands (suppressed once the job aborted — the
                // Aborted event is terminal for its consumers).
                if let (Some(sink), Some(slots)) = (sink, stream_slots.as_ref()) {
                    let stream = &slots[unit.prep][unit.eps];
                    stream.dims.lock().expect("stream slot poisoned")[unit.dim] =
                        Some(result.clone());
                    if stream.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                        && slot.aborted.load(Ordering::Acquire) == ABORT_NONE
                    {
                        let dims = stream.dims.lock().expect("stream slot poisoned");
                        let slice = assemble_slice_result(epsilon, seed, job.persistence, &dims);
                        for &job_index in &parties[unit.prep] {
                            if !requests[job_index].1.cancel.is_cancelled() {
                                sink(SliceEvent::Slice {
                                    job_index,
                                    slice_index: unit.eps,
                                    result: slice.clone(),
                                });
                            }
                        }
                    }
                }
                Some(result)
            };
            // Last unit of the job frees its arena — on the executed
            // *and* the cancelled path — so peak memory tracks the
            // jobs in flight and an abort can never leak its arena.
            if slot.remaining_units.fetch_sub(1, Ordering::AcqRel) == 1 {
                let freed = slot.arena.lock().expect("prep slot poisoned").take();
                if let Some(freed) = freed {
                    // Monotone-safe: `Gauge::sub` saturates at zero and
                    // debug-asserts on underflow, so a double free can
                    // never wrap the gauge to ~2⁶⁴.
                    self.metrics.arena_bytes_live.sub(freed.arena_bytes() as u64);
                }
            }
            result
        });

        // Scatter unit results back into (job, ε, dim) slots — the
        // assembly below is then independent of the interleaved unit
        // order.
        let mut per_job: PerJobResults = misses
            .iter()
            .map(|&j| {
                vec![vec![None; requests[j].0.max_homology_dim + 1]; requests[j].0.epsilons.len()]
            })
            .collect();
        for (unit, est) in units.iter().zip(estimates) {
            per_job[unit.prep][unit.eps][unit.dim] = est;
        }

        // One cancellation snapshot drives both cache admission and
        // outcome delivery below, so the two can never disagree: a
        // request delivered as `Aborted(Cancelled)` is guaranteed to
        // have left nothing in the cache, even when the cancel landed
        // after the last unit's boundary check (a fast job can finish
        // all its units before a cancel issued mid-stream arrives).
        let cancelled: Vec<bool> =
            requests.iter().map(|(_, qos, ..)| qos.cancel.is_cancelled()).collect();

        // Assemble per computed job, publish to the cache, then resolve
        // the in-batch duplicates through their representative miss.
        // Aborted jobs are **skipped entirely**: no partial result is
        // assembled, nothing touches the LRU — neither an entry nor a
        // doorkeeper sighting — so an abort can never poison future
        // lookups. Colliding requests overwrite each other's cache slot
        // (last wins); the loser's next lookup fails verification and
        // simply recomputes.
        {
            let mut cache = self.cache.lock().expect("cache poisoned");
            for (p, &job_idx) in misses.iter().enumerate() {
                if preps[p].aborted.load(Ordering::Acquire) != ABORT_NONE
                    || parties[p].iter().all(|&i| cancelled[i])
                {
                    continue;
                }
                let job = requests[job_idx].0;
                let js = job_seed(self.config.batch_seed, fingerprints[job_idx]);
                let slices: Vec<SliceResult> = job
                    .epsilons
                    .iter()
                    .enumerate()
                    .map(|(e, &eps)| {
                        assemble_slice_result(
                            eps,
                            slice_seed(js, eps),
                            job.persistence,
                            &per_job[p][e],
                        )
                    })
                    .collect();
                // The last grid scale's units reduced their dimension's
                // diagram against the full arena — collect them once
                // per job, in dimension order.
                let diagrams = (job.persistence && !job.epsilons.is_empty()).then(|| {
                    let last = &per_job[p][job.epsilons.len() - 1];
                    PersistenceDiagrams {
                        dim_lo: 0,
                        diagrams: last
                            .iter()
                            .map(|slot| {
                                slot.as_ref()
                                    .and_then(|(_, _, persist)| persist.as_ref())
                                    .and_then(|persist| persist.bars.clone())
                                    .expect("every last-scale persistence unit reduced its diagram")
                            })
                            .collect(),
                    }
                });
                let result = Arc::new(JobResult {
                    fingerprint: fingerprints[job_idx],
                    job_seed: js,
                    slices,
                    diagrams,
                });
                cache.insert(
                    fingerprints[job_idx],
                    Arc::new(CachedJob { job: job.clone(), result: Arc::clone(&result) }),
                );
                results[job_idx] = Some(result);
            }
            // Mirror the cache's eviction count into its gauge while
            // the lock is held, so an exposition scraped right after
            // the batch is current.
            self.metrics.cache_evictions.set(cache.evictions());
        }

        // Outcomes, per original request: cancellation is honoured at
        // delivery (a cancelled request reports Aborted even when a
        // duplicate kept the computation alive, and even on a cache
        // hit); otherwise a resolved result completes and anything else
        // aborted engine-side. Delivery reads the same `cancelled`
        // snapshot that gated cache admission — see above.
        let now = Instant::now();
        (0..requests.len())
            .map(|i| {
                if cancelled[i] {
                    self.metrics.jobs_cancelled.inc();
                    record_event(
                        &self.recorder,
                        EventKind::Abort,
                        requests[i].3,
                        fingerprints[i],
                        || "reason=cancelled".to_string(),
                    );
                    return JobOutcome::Aborted(AbortReason::Cancelled);
                }
                let resolved = match (&results[i], dup_of[i]) {
                    (Some(r), _) => Some(Arc::clone(r)),
                    (None, Some(rep)) => results[rep].as_ref().map(Arc::clone),
                    (None, None) => None,
                };
                match resolved {
                    Some(result) => {
                        self.metrics.served_by_class[requests[i].1.priority.index()].inc();
                        JobOutcome::Completed(result)
                    }
                    None => {
                        // The computed job was abandoned; this request's
                        // own policy names the reason (all parties had
                        // one — cancellation was handled above, so this
                        // is a deadline).
                        let reason = requests[i]
                            .1
                            .abort_reason(now)
                            .unwrap_or(AbortReason::DeadlineExceeded);
                        self.metrics.jobs_deadline_expired.inc();
                        record_event(
                            &self.recorder,
                            EventKind::Abort,
                            requests[i].3,
                            fingerprints[i],
                            || format!("reason={reason}"),
                        );
                        JobOutcome::Aborted(reason)
                    }
                }
            })
            .collect()
    }
}

/// What one `(job, ε, dim)` unit produces: the estimate, the classical
/// cross-check, and (persistence jobs only) the persistence payload.
type UnitOutput = (BettiEstimate, usize, Option<UnitPersist>);

/// The persistence payload of one `(ε, dim)` unit: the dimension's
/// persistent-Betti row over the grid prefix ending at this ε, plus —
/// for the last grid scale only — the dimension's reduced diagram.
#[derive(Clone, Debug)]
struct UnitPersist {
    row: Vec<usize>,
    bars: Option<Vec<PersistencePair>>,
}

/// Assembles one [`SliceResult`] from its per-dimension unit outputs —
/// the single body behind both the streaming announcement and the final
/// collection, so the two can never drift.
fn assemble_slice_result(
    epsilon: f64,
    seed: u64,
    persistence: bool,
    per_dim: &[Option<UnitOutput>],
) -> SliceResult {
    fn landed(slot: &Option<UnitOutput>) -> &UnitOutput {
        slot.as_ref().expect("every dimension unit landed")
    }
    let persistence = persistence.then(|| SlicePersistence {
        dim_lo: 0,
        rows: per_dim
            .iter()
            .map(|slot| {
                landed(slot).2.as_ref().expect("persistence units carry their row").row.clone()
            })
            .collect(),
    });
    SliceResult {
        epsilon,
        seed,
        estimates: per_dim.iter().map(|slot| landed(slot).0).collect(),
        classical: per_dim.iter().map(|slot| landed(slot).1).collect(),
        persistence,
    }
}

/// Scattered unit results, indexed `[miss job][ε index][dimension]`.
type PerJobResults = Vec<Vec<Vec<Option<UnitOutput>>>>;

/// A cache entry: the served result together with the request it
/// answers, so a fingerprint collision is caught by content
/// verification instead of returning another request's results.
struct CachedJob {
    job: BettiJob,
    result: Arc<JobResult>,
}

/// A `(job, ε, dim)` estimation unit.
struct Unit {
    prep: usize,
    eps: usize,
    dim: usize,
}

/// Builds the priority-ordered unit queue the shared counter drains:
/// one bucket per [`Priority`] class (Interactive first, Bulk last),
/// each bucket interleaved round-robin across worker-sized windows.
/// Windows never straddle a class boundary — a mixed window would
/// round-robin lower-class units in among higher-class ones and push an
/// Interactive job's tail behind Bulk work. Within a bucket, jobs keep
/// their submission order, so an all-Normal batch reproduces the
/// historical FIFO interleaving exactly (and one worker degenerates to
/// the contiguous per-job order that maximises cache locality).
///
/// `unit_counts[p]` is job `p`'s total unit count, `dims_of[p]` its
/// homology-dimension count (`round = eps · dims + dim`).
fn build_unit_queue(
    class_of: &[Priority],
    unit_counts: &[usize],
    dims_of: &[usize],
    workers: usize,
) -> Vec<Unit> {
    let mut units = Vec::with_capacity(unit_counts.iter().sum());
    for class in Priority::CLASSES {
        let bucket: Vec<usize> = (0..class_of.len()).filter(|&p| class_of[p] == class).collect();
        for block in bucket.chunks(workers.max(1)) {
            let mut emitted_any = true;
            let mut round = 0usize;
            while emitted_any {
                emitted_any = false;
                for &p in block {
                    if round < unit_counts[p] {
                        units.push(Unit {
                            prep: p,
                            eps: round / dims_of[p],
                            dim: round % dims_of[p],
                        });
                        emitted_any = true;
                    }
                }
                round += 1;
            }
        }
    }
    units
}

/// `PrepSlot::aborted` values: active vs. abandoned.
const ABORT_NONE: u8 = 0;
const ABORT_FLAGGED: u8 = 1;

/// Lazily built, eagerly freed per-job arena storage: one
/// [`LaplacianFiltration`] shared by every `(ε, dim)` unit of the job,
/// plus the job's abort latch (set once, by the first unit whose
/// boundary check observes every interested request aborting) and the
/// job's [`SpectrumShare`] — many ε on the same grid slice to the same
/// activation-sorted triplet prefix, so their sparse units reuse one
/// Lanczos decomposition instead of re-running it per ε (spectra are
/// content-pure, so sharing never changes a unit's bits).
struct PrepSlot {
    arena: Mutex<Option<Arc<LaplacianFiltration>>>,
    spectra: SpectrumShare,
    remaining_units: AtomicUsize,
    aborted: AtomicU8,
}

/// Streaming bookkeeping for one `(job, ε)` slice: per-dimension results
/// land here as their units complete, and the countdown reaching zero is
/// the moment the slice is announced to the sink.
struct StreamSlot {
    dims: Mutex<Vec<Option<UnitOutput>>>,
    remaining: AtomicUsize,
}

/// Runs `f(0..n)` on `workers` threads pulling unit indices from a
/// shared counter (dynamic assignment ≙ work stealing at unit
/// granularity), returning results in unit order. `f` must be a pure
/// function of the index — that, plus index-ordered collection, is what
/// makes engine output independent of scheduling. (QoS abort checks
/// make `f`'s *side effects* time-dependent, but never the value of a
/// completed job: a unit either returns its content-pure estimate or
/// `None`.)
///
/// Deliberately scoped threads rather than the vendored-rayon global
/// pool: the serving contract is "bit-identical at any worker count",
/// so the count must be an explicit, testable parameter (the global
/// pool's size is fixed at process level). The spawn cost is paid once
/// per *batch*, not per kernel — the fine-grained per-call cost the
/// global pool exists to remove.
fn run_units<T: Send>(workers: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                out.lock().expect("unit worker panicked").push((i, r));
            });
        }
    });
    let mut v = out.into_inner().expect("unit worker panicked");
    v.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(v.len(), n);
    v.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtda_tda::point_cloud::PointCloud;

    fn job(coords: Vec<f64>) -> BettiJob {
        BettiJob::new(PointCloud::new(2, coords), vec![0.6, 1.2])
    }

    #[test]
    fn run_units_preserves_order_across_worker_counts() {
        let serial = run_units(1, 37, |i| i * i);
        for workers in [2, 3, 8] {
            assert_eq!(run_units(workers, 37, |i| i * i), serial);
        }
        assert!(run_units(4, 0, |i| i).is_empty());
    }

    #[test]
    fn duplicate_jobs_in_one_batch_compute_once() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let results = engine.run_batch(&[j.clone(), j.clone(), j]);
        assert_eq!(engine.stats().computed_jobs, 1);
        assert_eq!(engine.stats().deduplicated, 2);
        assert!(Arc::ptr_eq(&results[0], &results[1]));
        assert!(Arc::ptr_eq(&results[0], &results[2]));
    }

    #[test]
    fn second_batch_hits_the_cache() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let first = engine.run_batch(std::slice::from_ref(&j));
        let second = engine.run_batch(std::slice::from_ref(&j));
        assert_eq!(engine.stats().computed_jobs, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        assert!(Arc::ptr_eq(&first[0], &second[0]), "cache returns the shared result");
    }

    #[test]
    fn zero_capacity_cache_recomputes_identically() {
        let engine =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..EngineConfig::default() });
        let j = job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0]);
        let a = engine.run_job(&j);
        let b = engine.run_job(&j);
        assert_eq!(engine.stats().computed_jobs, 2, "nothing cached");
        assert_eq!(a.features(), b.features(), "recompute is bit-identical anyway");
    }

    #[test]
    fn empty_grid_job_yields_no_slices() {
        let engine = BatchEngine::with_defaults();
        let mut j = job(vec![0.0, 0.0, 1.0, 0.0]);
        j.epsilons.clear();
        let r = engine.run_job(&j);
        assert!(r.slices.is_empty());
        assert!(r.features().is_empty());
    }

    /// Every job index — computed, duplicated, or cache-answered — must
    /// receive each of its slices exactly once, bit-identical to the
    /// returned results.
    #[test]
    fn streaming_sink_covers_hits_duplicates_and_computes() {
        let engine = BatchEngine::with_defaults();
        let a = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let b = job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0]);
        engine.run_job(&a); // put `a` in the cache
        let jobs = [b.clone(), a.clone(), b]; // compute, hit, duplicate
        let events: Mutex<Vec<SliceEvent>> = Mutex::new(Vec::new());
        let results =
            engine.run_batch_streaming(&jobs, &|ev| events.lock().expect("sink poisoned").push(ev));
        let events = events.into_inner().expect("sink poisoned");
        let expected: usize = jobs.iter().map(|j| j.epsilons.len()).sum();
        assert_eq!(events.len(), expected, "one event per (job, slice)");
        for (i, (jb, result)) in jobs.iter().zip(&results).enumerate() {
            for slice_index in 0..jb.epsilons.len() {
                let matching: Vec<&SliceResult> = events
                    .iter()
                    .filter_map(|e| match e {
                        SliceEvent::Slice { job_index, slice_index: s, result }
                            if *job_index == i && *s == slice_index =>
                        {
                            Some(result)
                        }
                        _ => None,
                    })
                    .collect();
                assert_eq!(matching.len(), 1, "job {i} slice {slice_index} announced once");
                let streamed = matching[0];
                let returned = &result.slices[slice_index];
                assert_eq!(streamed.seed, returned.seed);
                assert_eq!(streamed.classical, returned.classical);
                for (s, r) in streamed.features().iter().zip(returned.features()) {
                    assert_eq!(s.to_bits(), r.to_bits(), "job {i} slice {slice_index}");
                }
            }
        }
    }

    #[test]
    fn streaming_and_collect_paths_are_bit_identical() {
        let jobs =
            [job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]), job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0])];
        let collected =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..EngineConfig::default() })
                .run_batch(&jobs);
        let streamed =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..EngineConfig::default() })
                .run_batch_streaming(&jobs, &|_| {});
        for (c, s) in collected.iter().zip(&streamed) {
            assert_eq!(c.fingerprint, s.fingerprint);
            for (a, b) in c.features().iter().zip(s.features()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A forged fingerprint collision (another request's entry planted
    /// under this job's key) must degrade to a recompute — never to
    /// serving the other request's results.
    #[test]
    fn fingerprint_collision_recomputes_instead_of_serving_wrong_results() {
        let engine = BatchEngine::with_defaults();
        let a = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let b = job(vec![0.0, 0.0, 3.0, 0.0, 0.0, 3.0, 3.0, 3.0]);
        let result_a = engine.run_job(&a);
        // Plant A's cached entry under B's fingerprint, as a real 64-bit
        // collision would.
        engine.cache.lock().expect("cache poisoned").insert(
            b.fingerprint(),
            Arc::new(CachedJob { job: a.clone(), result: Arc::clone(&result_a) }),
        );
        let result_b = engine.run_job(&b);
        assert_eq!(engine.stats().computed_jobs, 2, "the collision must recompute");
        assert_eq!(engine.stats().cache_hits, 0);
        let fresh = BatchEngine::with_defaults().run_job(&b);
        assert_eq!(result_b.fingerprint, fresh.fingerprint);
        for (x, y) in result_b.features().iter().zip(fresh.features()) {
            assert_eq!(x.to_bits(), y.to_bits(), "recompute serves B's own results");
        }
    }

    #[test]
    fn forged_in_batch_collision_runs_jobs_independently() {
        // Two *different* jobs forged onto one fingerprint, as a real
        // 64-bit collision inside a single batch would present: the
        // dedup plan must verify the full content stream and fall back
        // to independent execution, never collapse B onto A.
        let a = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let b = job(vec![0.0, 0.0, 3.0, 0.0, 0.0, 3.0, 3.0, 3.0]);
        let a2 = a.clone();
        let jobs: Vec<&BettiJob> = vec![&a, &b, &a2];
        let forged = vec![0xDEAD_BEEF_u64; 3]; // all three collide
        let (misses, dup_of) = plan_dedup(&jobs, &forged, &[0, 1, 2]);
        assert_eq!(misses, vec![0, 1], "A and B each compute independently");
        assert_eq!(dup_of[0], None);
        assert_eq!(dup_of[1], None, "the forged collision must not dedup B onto A");
        assert_eq!(dup_of[2], Some(0), "the genuine duplicate still collapses onto A");
        // End to end: the engine's own (honest) fingerprints plus the
        // verified plan serve each job its own results.
        let engine = BatchEngine::new(EngineConfig { cache_capacity: 0, ..Default::default() });
        let batch = engine.run_batch(&[a.clone(), b.clone(), a.clone()]);
        assert_eq!(engine.stats().computed_jobs, 2);
        assert_eq!(engine.stats().deduplicated, 1);
        let b_alone =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..Default::default() }).run_job(&b);
        for (x, y) in batch[1].features().iter().zip(b_alone.features()) {
            assert_eq!(x.to_bits(), y.to_bits(), "B keeps its own results in the mixed batch");
        }
    }

    #[test]
    fn doorkeeper_keeps_hot_entries_through_one_shot_scans() {
        let engine = BatchEngine::new(EngineConfig {
            cache_capacity: 2,
            cache_doorkeeper: true,
            ..EngineConfig::default()
        });
        let hot = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        engine.run_job(&hot); // first sighting: computed, not admitted
        engine.run_job(&hot); // second sighting: recomputed and admitted
        assert_eq!(engine.stats().cache_hits, 0);
        // A scan of one-shot windows (each seen once) must not evict it.
        for i in 0..6 {
            engine.run_job(&job(vec![0.0, 0.0, 1.0 + i as f64, 0.0]));
        }
        engine.run_job(&hot);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1, "the hot entry survived the scan");
        assert_eq!(stats.cache_evictions, 0, "one-shot traffic was never admitted");
        assert_eq!(stats.cache_misses, stats.jobs_served - 1);
    }

    #[test]
    fn stats_track_batches_and_units() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        engine.run_batch(std::slice::from_ref(&j));
        let first = engine.stats();
        assert_eq!(first.batches_served, 1);
        assert_eq!(first.units_last_batch, 4, "2 ε × 2 dims");
        assert_eq!(first.cache_misses, 1);
        assert_eq!(first.served_normal, 1, "plain batches serve in the Normal class");
        assert_eq!(first.units_cancelled, 0);
        engine.run_batch(std::slice::from_ref(&j)); // all hits → no units
        let second = engine.stats();
        assert_eq!(second.batches_served, 2);
        assert_eq!(second.units_last_batch, 0);
        assert_eq!(second.served_normal, 2);
        assert!((second.mean_units_per_batch() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arena_counters_track_builds_reuse_and_peak_bytes() {
        // Serial worker: the arena is built by the first unit and every
        // later unit of the job reads it incrementally.
        let engine = BatchEngine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]); // 2 ε × 2 dims = 4 units
        engine.run_job(&j);
        let stats = engine.stats();
        assert_eq!(stats.arenas_built, 1, "one arena per computed job");
        assert_eq!(
            stats.slices_assembled_incrementally, 3,
            "all units after the first reuse the arena"
        );
        assert!(stats.arena_bytes_peak > 0);
        assert_eq!(stats.arena_bytes_live, 0, "the last unit freed the arena");
        // A cache hit runs no units and builds nothing new.
        engine.run_job(&j);
        let after = engine.stats();
        assert_eq!(after.arenas_built, 1);
        assert_eq!(after.slices_assembled_incrementally, 3);
    }

    #[test]
    fn slices_come_back_in_grid_order() {
        let engine = BatchEngine::with_defaults();
        let mut j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        j.epsilons = vec![1.2, 0.3, 0.9];
        let r = engine.run_job(&j);
        let served: Vec<f64> = r.slices.iter().map(|s| s.epsilon).collect();
        assert_eq!(served, vec![1.2, 0.3, 0.9]);
    }

    #[test]
    fn qos_batch_with_default_policies_matches_run_batch() {
        let jobs =
            [job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]), job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0])];
        let reference =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..EngineConfig::default() })
                .run_batch(&jobs);
        let engine =
            BatchEngine::new(EngineConfig { cache_capacity: 0, ..EngineConfig::default() });
        let outcomes =
            engine.run_batch_qos(&jobs.iter().cloned().map(JobRequest::new).collect::<Vec<_>>());
        for (outcome, reference) in outcomes.iter().zip(&reference) {
            let result = outcome.result().expect("default QoS always completes");
            for (a, b) in result.features().iter().zip(reference.features()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn cancelled_request_aborts_without_touching_the_cache() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let qos = QosPolicy::default();
        qos.cancel_token().cancel();
        let outcomes = engine.run_batch_qos(&[JobRequest::with_qos(j.clone(), qos)]);
        assert!(
            matches!(outcomes[0], JobOutcome::Aborted(AbortReason::Cancelled)),
            "pre-cancelled request must abort"
        );
        let stats = engine.stats();
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(stats.units_cancelled, 4, "2 ε × 2 dims all skipped");
        assert_eq!(stats.units_executed, 0);
        assert_eq!(stats.arena_bytes_live, 0, "no arena survives an abort");
        // Nothing was cached: the next run computes from scratch.
        engine.run_job(&j);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn expired_deadline_aborts_while_a_live_duplicate_completes() {
        // Two identical jobs, one with an already-expired deadline: the
        // computation must stay alive for the healthy duplicate, and
        // the expired request still gets its own result (abort needs
        // *all* parties — here the healthy one holds the job open, and
        // a completed job serves everyone who didn't cancel).
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let expired =
            QosPolicy::default().with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let outcomes = engine
            .run_batch_qos(&[JobRequest::with_qos(j.clone(), expired), JobRequest::new(j.clone())]);
        let healthy = outcomes[1].result().expect("healthy duplicate completes");
        let via_expired = outcomes[0]
            .result()
            .expect("the duplicate kept the job alive, so the ready answer is delivered");
        assert!(Arc::ptr_eq(healthy, via_expired));
        assert_eq!(engine.stats().units_cancelled, 0, "no unit was skipped");
    }

    #[test]
    fn solo_expired_deadline_is_abandoned_at_the_first_unit() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let expired =
            QosPolicy::default().with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let outcomes = engine.run_batch_qos(&[JobRequest::with_qos(j, expired)]);
        assert!(matches!(outcomes[0], JobOutcome::Aborted(AbortReason::DeadlineExceeded)));
        let stats = engine.stats();
        assert_eq!(stats.jobs_deadline_expired, 1);
        assert_eq!(stats.units_cancelled, 4);
        assert_eq!(stats.units_executed, 0);
    }

    /// Worker windows must never straddle a class boundary, or the
    /// round-robin would interleave Bulk units among Interactive ones
    /// and push an express job's tail behind throughput work. Pinned on
    /// the queue construction itself (pure, scheduling-free).
    #[test]
    fn unit_queue_windows_never_straddle_class_boundaries() {
        // 1 Interactive + 2 Bulk jobs, 4 units each (2 ε × 2 dims),
        // 2 workers: all Interactive units precede every Bulk unit —
        // the straddling window [I, B] would emit I, B, I, B, … — and
        // the Bulk bucket keeps the worker-window interleaving.
        let classes = [Priority::Bulk, Priority::Interactive, Priority::Bulk];
        let queue = build_unit_queue(&classes, &[4, 4, 4], &[2, 2, 2], 2);
        let preps: Vec<usize> = queue.iter().map(|u| u.prep).collect();
        assert_eq!(preps[..4], [1, 1, 1, 1], "interactive bucket drains first: {preps:?}");
        assert_eq!(preps[4..], [0, 2, 0, 2, 0, 2, 0, 2], "bulk window round-robin: {preps:?}");
        // Units within a job stay row-major over (ε, dim).
        assert_eq!((queue[0].eps, queue[0].dim), (0, 0));
        assert_eq!((queue[1].eps, queue[1].dim), (0, 1));
        assert_eq!((queue[2].eps, queue[2].dim), (1, 0));

        // All-Normal reproduces the historical FIFO interleaving:
        // worker-sized windows over submission order.
        let fifo = build_unit_queue(&[Priority::Normal; 3], &[4, 4, 4], &[2, 2, 2], 2);
        let fifo_preps: Vec<usize> = fifo.iter().map(|u| u.prep).collect();
        assert_eq!(fifo_preps, [0, 1, 0, 1, 0, 1, 0, 1, 2, 2, 2, 2]);

        // Uneven unit counts drain without gaps or duplicates.
        let ragged = build_unit_queue(&[Priority::Normal, Priority::Normal], &[2, 6], &[2, 2], 2);
        let mut seen = std::collections::HashSet::new();
        for u in &ragged {
            assert!(seen.insert((u.prep, u.eps, u.dim)), "duplicate unit");
        }
        assert_eq!(ragged.len(), 8);
    }

    #[test]
    fn priority_ordering_moves_interactive_units_first() {
        // One worker, three jobs in Bulk/Normal/Interactive submission
        // order: the interleaved unit queue must start with the
        // interactive job's units. Observed through the streaming sink's
        // completion order (serial worker ⇒ queue order).
        let engine = BatchEngine::new(EngineConfig {
            workers: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let jobs = [
            JobRequest::with_qos(job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]), QosPolicy::bulk()),
            JobRequest::with_qos(job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0]), QosPolicy::normal()),
            JobRequest::with_qos(job(vec![0.0, 0.0, 3.0, 0.0, 0.0, 3.0]), QosPolicy::interactive()),
        ];
        let first_done: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let outcomes = engine.run_batch_streaming_qos(&jobs, &|event| {
            if let SliceEvent::Slice { job_index, .. } = event {
                first_done.lock().expect("sink poisoned").push(job_index);
            }
        });
        assert!(outcomes.iter().all(|o| o.result().is_some()));
        let order = first_done.into_inner().expect("sink poisoned");
        assert_eq!(order[0], 2, "the interactive job's first slice completes first: {order:?}");
        assert_eq!(*order.last().expect("slices streamed"), 0, "bulk finishes last: {order:?}");
        let stats = engine.stats();
        assert_eq!(
            (stats.served_interactive, stats.served_normal, stats.served_bulk),
            (1, 1, 1),
            "per-class served counts"
        );
    }

    #[test]
    fn engine_stats_are_a_view_over_the_metrics_registry() {
        let engine = BatchEngine::with_defaults();
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        engine.run_batch(&[j.clone(), j]);
        let stats = engine.stats();
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("qtda_engine_jobs_served_total"), stats.jobs_served);
        assert_eq!(snap.counter("qtda_engine_cache_misses_total"), stats.cache_misses);
        assert_eq!(snap.counter("qtda_engine_deduplicated_total"), stats.deduplicated);
        assert_eq!(snap.counter("qtda_engine_units_executed_total"), stats.units_executed);
        assert_eq!(snap.counter_family("qtda_engine_served_total"), 2);
        assert_eq!(snap.gauge("qtda_engine_arena_bytes_live"), 0);
        assert_eq!(snap.gauge("qtda_engine_arena_bytes_peak"), stats.arena_bytes_peak);
        let exposition = snap.to_prometheus();
        assert!(
            exposition.contains("qtda_engine_served_total{class=\"normal\"} 2"),
            "per-class served sample missing:\n{exposition}"
        );
        assert!(exposition.contains("# TYPE qtda_engine_arena_bytes_live gauge"));
    }

    /// The `arena_bytes_live` regression the saturating gauge guards:
    /// a mid-batch cancellation of *both* parties sharing one computed
    /// arena must drain the gauge to exactly zero through the
    /// cancelled-unit free path.
    #[test]
    fn mid_batch_cancellation_frees_the_shared_arena_to_exactly_zero() {
        let engine = BatchEngine::new(EngineConfig {
            workers: 1,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let mut j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        j.epsilons = vec![0.4, 0.8, 1.2]; // 3 ε × 2 dims = 6 units
        let qos_a = QosPolicy::default();
        let qos_b = QosPolicy::default();
        let (token_a, token_b) = (qos_a.cancel_token(), qos_b.cancel_token());
        let requests = [JobRequest::with_qos(j.clone(), qos_a), JobRequest::with_qos(j, qos_b)];
        // Serial worker: the first completed slice cancels both
        // parties, so the next unit's boundary check abandons the job
        // with the arena still resident.
        let outcomes = engine.run_batch_streaming_qos(&requests, &|event| {
            if matches!(event, SliceEvent::Slice { .. }) {
                token_a.cancel();
                token_b.cancel();
            }
        });
        for outcome in &outcomes {
            assert!(matches!(outcome, JobOutcome::Aborted(AbortReason::Cancelled)));
        }
        let stats = engine.stats();
        assert!(stats.units_executed >= 2, "the first slice's units ran");
        assert!(stats.units_cancelled >= 1, "cancellation skipped the tail");
        assert!(stats.arena_bytes_peak > 0, "an arena was resident");
        assert_eq!(stats.arena_bytes_live, 0, "the cancelled free path drained the gauge");
    }

    #[test]
    fn per_request_traces_record_stage_spans() {
        let engine = BatchEngine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
        let j = job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let tracer = Tracer::new();
        let outcomes =
            engine.run_batch_qos(&[JobRequest::new(j.clone()).with_trace(tracer.clone())]);
        assert!(outcomes[0].result().is_some());
        let trace = tracer.snapshot().expect("live tracer");
        #[cfg(feature = "obs")]
        {
            assert!(trace.stage("cache_probe").is_some());
            assert!(trace.stage("arena_build").is_some());
            let solves = trace.spans.iter().filter(|s| s.name == "solve").count();
            assert_eq!(solves, 4, "one solve span per (ε, dim) unit");
        }
        #[cfg(not(feature = "obs"))]
        assert!(trace.spans.is_empty(), "spans compile away without the obs feature");

        // A cache-answered repeat probes but never builds or solves.
        let repeat = Tracer::new();
        engine.run_batch_qos(&[JobRequest::new(j).with_trace(repeat.clone())]);
        let trace = repeat.snapshot().expect("live tracer");
        assert!(trace.stage("arena_build").is_none());
        assert!(trace.stage("solve").is_none());
    }

    /// The determinism contract observability rides under: attaching a
    /// live registry and per-request tracers changes no output bit, and
    /// neither does a fully disabled registry.
    #[test]
    fn telemetry_never_changes_result_bits() {
        let jobs =
            [job(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]), job(vec![0.0, 0.0, 2.0, 0.0, 0.0, 2.0])];
        let config = EngineConfig { cache_capacity: 0, ..EngineConfig::default() };
        let reference = BatchEngine::new(config).run_batch(&jobs);
        for registry in [MetricsRegistry::new(), MetricsRegistry::disabled()] {
            let engine = BatchEngine::with_metrics(config, Arc::new(registry));
            let traced: Vec<JobRequest> =
                jobs.iter().map(|j| JobRequest::new(j.clone()).with_trace(Tracer::new())).collect();
            let outcomes = engine.run_batch_qos(&traced);
            for (outcome, reference) in outcomes.iter().zip(&reference) {
                let result = outcome.result().expect("default QoS completes");
                assert_eq!(result.fingerprint, reference.fingerprint);
                for (a, b) in result.features().iter().zip(reference.features()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sparse_units_feed_the_solver_cost_counters() {
        use qtda_tda::point_cloud::synthetic;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        let cloud = synthetic::circle(14, 1.0, 0.02, &mut rng);
        let engine = BatchEngine::new(EngineConfig {
            dispatch: Some(DispatchPolicy::from_sparse_threshold(1)),
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        engine.run_job(&BettiJob::new(cloud, vec![0.6]));
        let snap = engine.registry().snapshot();
        assert!(
            snap.counter("qtda_engine_solve_matvecs_total") > 0,
            "sparse units report their matvec spend"
        );
        assert!(snap.counter("qtda_engine_lanczos_iterations_total") > 0);
    }
}
