//! Gearbox serving adapters: vibration windows → [`BettiJob`]s.
//!
//! The paper's §5 workload estimates Betti numbers for thousands of
//! independent small sliding-window point clouds. These helpers encode
//! its window → attractor recipe (RMS normalisation, then a Takens
//! delay embedding) so a stream of [`LabelledWindow`]s feeds the batch
//! engine natively.

use crate::job::BettiJob;
use qtda_core::estimator::EstimatorConfig;
use qtda_core::pipeline::DEFAULT_SPARSE_THRESHOLD;
use qtda_data::windows::LabelledWindow;
use qtda_tda::point_cloud::Metric;
use qtda_tda::takens::{takens_embedding, TakensParams};

/// How a vibration window becomes a Betti-serving job.
#[derive(Clone, Debug)]
pub struct GearboxJobSpec {
    /// Delay-embedding parameters (default: the §5 time-series case,
    /// d = 3, τ = 3, stride 12 — ≈ 42 points per 500-sample window).
    pub takens: TakensParams,
    /// ε-grid every job is served at.
    pub epsilons: Vec<f64>,
    /// Highest homology dimension to estimate.
    pub max_homology_dim: usize,
    /// Estimator parameters (`seed` ignored — engine-derived).
    pub estimator: EstimatorConfig,
    /// Sparse-path switchover.
    pub sparse_threshold: usize,
    /// RMS-normalise each window before embedding, so amplitude changes
    /// (load, sensor gain) do not masquerade as topology changes.
    pub normalise: bool,
}

impl Default for GearboxJobSpec {
    fn default() -> Self {
        GearboxJobSpec {
            takens: TakensParams { dimension: 3, delay: 3, stride: 12 },
            epsilons: vec![0.6, 1.0, 1.4],
            max_homology_dim: 1,
            estimator: EstimatorConfig::default(),
            sparse_threshold: DEFAULT_SPARSE_THRESHOLD,
            normalise: true,
        }
    }
}

/// Builds the serving job for one raw vibration window.
pub fn window_to_job(samples: &[f64], spec: &GearboxJobSpec) -> BettiJob {
    let cloud = if spec.normalise {
        let rms = (samples.iter().map(|v| v * v).sum::<f64>() / samples.len().max(1) as f64).sqrt();
        let scale = if rms > 1e-9 { 1.0 / rms } else { 1.0 };
        let normalised: Vec<f64> = samples.iter().map(|v| v * scale).collect();
        takens_embedding(&normalised, &spec.takens)
    } else {
        takens_embedding(samples, &spec.takens)
    };
    BettiJob {
        cloud,
        epsilons: spec.epsilons.clone(),
        max_homology_dim: spec.max_homology_dim,
        metric: Metric::Euclidean,
        estimator: spec.estimator,
        sparse_threshold: spec.sparse_threshold,
        persistence: false,
    }
}

/// Builds one job per labelled window, preserving stream order (labels
/// stay aligned by index for the downstream classifier).
pub fn jobs_from_windows(windows: &[LabelledWindow], spec: &GearboxJobSpec) -> Vec<BettiJob> {
    windows.iter().map(|w| window_to_job(&w.samples, spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtda_data::gearbox::GearboxConfig;
    use qtda_data::windows::sliding_window_stream;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_embeds_to_expected_cloud_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let ws = sliding_window_stream(&GearboxConfig::default(), 2, 500, 250, &mut rng);
        let spec = GearboxJobSpec::default();
        let job = window_to_job(&ws[0].samples, &spec);
        assert_eq!(job.cloud.dim(), 3);
        // (500 − ((3−1)·3 + 1)) / 12 + 1 = 42 embedded points.
        assert_eq!(job.cloud.len(), 42);
        assert_eq!(job.epsilons, spec.epsilons);
    }

    #[test]
    fn normalisation_is_amplitude_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let ws = sliding_window_stream(&GearboxConfig::default(), 1, 500, 500, &mut rng);
        let spec = GearboxJobSpec::default();
        let doubled: Vec<f64> = ws[0].samples.iter().map(|v| v * 2.0).collect();
        assert_eq!(
            window_to_job(&ws[0].samples, &spec).fingerprint(),
            window_to_job(&doubled, &spec).fingerprint(),
            "pure gain must not change the job"
        );
        let raw = GearboxJobSpec { normalise: false, ..spec };
        assert_ne!(
            window_to_job(&ws[0].samples, &raw).fingerprint(),
            window_to_job(&doubled, &raw).fingerprint()
        );
    }

    #[test]
    fn jobs_align_with_windows() {
        let mut rng = StdRng::seed_from_u64(3);
        let ws = sliding_window_stream(&GearboxConfig::default(), 3, 500, 100, &mut rng);
        let jobs = jobs_from_windows(&ws, &GearboxJobSpec::default());
        assert_eq!(jobs.len(), ws.len());
    }
}
