//! The batch engine's request type and its content fingerprint.

use qtda_core::estimator::EstimatorConfig;
use qtda_core::padding::{LambdaMaxBound, PaddingScheme};
use qtda_core::pipeline::DEFAULT_SPARSE_THRESHOLD;
use qtda_core::scaling::Delta;
use qtda_tda::point_cloud::{Metric, PointCloud};

/// One Betti-serving request: estimate `β̃_0 … β̃_K` of a point cloud at
/// every scale of an ε-grid.
///
/// The engine overrides `estimator.seed` with its own per-slice seed
/// stream (see [`crate::seed`]); the field's value is ignored, which is
/// also why it is excluded from [`BettiJob::fingerprint`].
#[derive(Clone, Debug)]
pub struct BettiJob {
    /// The point cloud to analyse.
    pub cloud: PointCloud,
    /// Grouping scales to serve, in request order.
    pub epsilons: Vec<f64>,
    /// Highest homology dimension to estimate (the complex is built one
    /// dimension higher, as in the one-shot pipeline).
    pub max_homology_dim: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Estimator parameters (`seed` ignored — engine-derived).
    pub estimator: EstimatorConfig,
    /// `|S_k|` at or above which a dimension runs the sparse path.
    pub sparse_threshold: usize,
    /// Also serve **persistent homology**: every slice gains its
    /// persistent-Betti row over the grid prefix (per dimension) and
    /// the job result gains per-dimension persistence diagrams — exact
    /// integer/interval payloads read from the job's filtration arena,
    /// bit-identical to the classical barcode reduction. Requires an
    /// ascending ε-grid. Part of the fingerprint (a persistence job
    /// and its plain twin cache separately).
    pub persistence: bool,
}

impl BettiJob {
    /// A job with the pipeline's defaults: dimensions β₀/β₁, Euclidean
    /// metric, default estimator, default sparse switchover.
    pub fn new(cloud: PointCloud, epsilons: Vec<f64>) -> Self {
        BettiJob {
            cloud,
            epsilons,
            max_homology_dim: 1,
            metric: Metric::Euclidean,
            estimator: EstimatorConfig::default(),
            sparse_threshold: DEFAULT_SPARSE_THRESHOLD,
            persistence: false,
        }
    }

    /// The job with persistence serving switched on (see
    /// [`Self::persistence`]).
    pub fn with_persistence(mut self) -> Self {
        self.persistence = true;
        self
    }

    /// The largest scale in the grid (`−∞` for an empty grid) — the
    /// scale the amortised Rips construction is built at, delegating to
    /// the same fold `rips_slices` uses so the two can never disagree.
    pub fn max_epsilon(&self) -> f64 {
        qtda_tda::filtration::max_scale(&self.epsilons)
    }

    /// `true` when `other` describes the same request. Compares the same
    /// canonical content stream [`Self::fingerprint`] hashes, so the two
    /// can never drift apart. The engine verifies this on every cache
    /// hit **and** on every in-batch dedup representative, so a 64-bit
    /// fingerprint collision degrades to a recompute instead of serving
    /// another request's results — load-bearing now that the cluster
    /// tier also routes requests onto shards by this fingerprint
    /// (colliding jobs land in one batch on one shard, exactly where
    /// the verification catches them).
    pub fn same_request(&self, other: &BettiJob) -> bool {
        self.content_words() == other.content_words()
    }

    /// A 64-bit content fingerprint over everything that determines this
    /// job's results: cloud geometry, ε-grid, dimensions, metric,
    /// estimator parameters (minus the ignored seed) and the sparse
    /// switchover. Identical windows therefore collide on purpose — this
    /// is the LRU cache key and the root of the job's seed stream.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for word in self.content_words() {
            h.write_u64(word);
        }
        h.finish()
    }

    /// The job's full result-determining content as one canonical word
    /// stream — **the single place to extend when a field is added**.
    /// [`Self::fingerprint`] hashes this stream and
    /// [`Self::same_request`] compares it, so cache keying and hit
    /// verification cannot fall out of sync. Floats contribute their bit
    /// patterns (`-0.0 ≠ 0.0`, NaN payloads distinct); variable-length
    /// sections are length-prefixed and enum variants tagged, keeping
    /// the encoding injective. `estimator.seed` is deliberately absent
    /// (the engine overrides it).
    fn content_words(&self) -> Vec<u64> {
        let mut w =
            Vec::with_capacity(self.cloud.len() * self.cloud.dim() + self.epsilons.len() + 16);
        w.push(self.cloud.dim() as u64);
        w.push(self.cloud.len() as u64);
        for i in 0..self.cloud.len() {
            for &c in self.cloud.point(i) {
                w.push(c.to_bits());
            }
        }
        w.push(self.epsilons.len() as u64);
        for &e in &self.epsilons {
            w.push(e.to_bits());
        }
        w.push(self.max_homology_dim as u64);
        w.push(match self.metric {
            Metric::Euclidean => 0,
            Metric::Manhattan => 1,
            Metric::Chebyshev => 2,
        });
        w.push(self.sparse_threshold as u64);
        let est = &self.estimator;
        w.push(est.precision_qubits as u64);
        w.push(est.shots as u64);
        w.push(match est.padding {
            PaddingScheme::IdentityHalfLambdaMax => 0,
            PaddingScheme::Zeros => 1,
        });
        match est.delta {
            Delta::Auto => w.push(0),
            Delta::Fixed(d) => {
                w.push(1);
                w.push(d.to_bits());
            }
        }
        match est.lambda_bound {
            LambdaMaxBound::Gershgorin => w.push(0),
            LambdaMaxBound::PowerIteration { iterations, seed } => {
                w.push(1);
                w.push(iterations as u64);
                w.push(seed);
            }
            LambdaMaxBound::Fixed { bound } => {
                w.push(2);
                w.push(bound.to_bits());
            }
        }
        // Appended only when set, so every pre-persistence fingerprint
        // (cache keys, seed roots) is preserved bit for bit.
        if self.persistence {
            w.push(0x5045_5253_4953_5431); // "PERSIST1"
        }
        w
    }
}

/// FNV-1a over 64-bit words: tiny, dependency-free, and stable across
/// platforms and versions (unlike `DefaultHasher`, whose algorithm is
/// explicitly unspecified — fingerprints are cache keys and seed roots,
/// so they must never drift).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    fn write_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_cloud() -> PointCloud {
        PointCloud::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0])
    }

    #[test]
    fn identical_jobs_share_a_fingerprint() {
        let a = BettiJob::new(square_cloud(), vec![0.5, 1.0]);
        let b = BettiJob::new(square_cloud(), vec![0.5, 1.0]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_relevant_field_perturbs_the_fingerprint() {
        let base = BettiJob::new(square_cloud(), vec![0.5, 1.0]);
        let fp = base.fingerprint();

        let mut cloud = base.clone();
        cloud.cloud = PointCloud::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.001]);
        assert_ne!(cloud.fingerprint(), fp, "cloud coordinates");

        let mut grid = base.clone();
        grid.epsilons = vec![0.5, 1.1];
        assert_ne!(grid.fingerprint(), fp, "ε-grid");

        let mut dim = base.clone();
        dim.max_homology_dim = 2;
        assert_ne!(dim.fingerprint(), fp, "max homology dim");

        let mut metric = base.clone();
        metric.metric = Metric::Manhattan;
        assert_ne!(metric.fingerprint(), fp, "metric");

        let mut shots = base.clone();
        shots.estimator.shots = 999;
        assert_ne!(shots.fingerprint(), fp, "shots");

        let mut precision = base.clone();
        precision.estimator.precision_qubits = 9;
        assert_ne!(precision.fingerprint(), fp, "precision qubits");

        let mut threshold = base.clone();
        threshold.sparse_threshold = 7;
        assert_ne!(threshold.fingerprint(), fp, "sparse threshold");

        let persistence = base.clone().with_persistence();
        assert_ne!(persistence.fingerprint(), fp, "persistence mode");
        assert!(!base.same_request(&persistence));
    }

    #[test]
    fn estimator_seed_is_excluded() {
        let mut a = BettiJob::new(square_cloud(), vec![0.5]);
        let mut b = BettiJob::new(square_cloud(), vec![0.5]);
        a.estimator.seed = 1;
        b.estimator.seed = 2;
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "the engine overrides the seed, so it must not split cache entries"
        );
    }

    #[test]
    fn grid_order_matters() {
        // Slices are returned in grid order; a reordered grid is a
        // different request.
        let a = BettiJob::new(square_cloud(), vec![0.5, 1.0]);
        let b = BettiJob::new(square_cloud(), vec![1.0, 0.5]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn max_epsilon_over_unsorted_grid() {
        let job = BettiJob::new(square_cloud(), vec![0.9, 1.4, 0.3]);
        assert_eq!(job.max_epsilon(), 1.4);
        assert_eq!(
            BettiJob::new(square_cloud(), vec![-2.0, -0.5]).max_epsilon(),
            -0.5,
            "all-negative grids report their true maximum"
        );
        assert_eq!(BettiJob::new(square_cloud(), Vec::new()).max_epsilon(), f64::NEG_INFINITY);
    }

    #[test]
    fn same_request_tracks_fingerprint_fields() {
        let base = BettiJob::new(square_cloud(), vec![0.5, 1.0]);
        let mut seed_only = base.clone();
        seed_only.estimator.seed = 99;
        assert!(base.same_request(&seed_only), "the ignored seed must not split requests");

        let mut other_cloud = base.clone();
        other_cloud.cloud = PointCloud::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.001]);
        assert!(!base.same_request(&other_cloud));

        let mut other_grid = base.clone();
        other_grid.epsilons = vec![1.0, 0.5];
        assert!(!base.same_request(&other_grid), "grid order is part of the request");

        let mut other_shots = base.clone();
        other_shots.estimator.shots = 123;
        assert!(!base.same_request(&other_shots));
    }
}
