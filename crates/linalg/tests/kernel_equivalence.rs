//! Kernel-equivalence suite: the cache-blocked / multi-vector / block-
//! Lanczos fast paths must be drop-in replacements for the reference
//! paths — **bit-identical** where the contract says bits, within
//! spectral tolerance where it says values.
//!
//! CI runs this file as its named "Kernel equivalence" step; the
//! benchmark harness (`benches/sparse_vs_dense.rs`) asserts the same
//! identities on its own inputs before any timing, so a kernel that
//! drifts can never post a number.

use qtda_linalg::{
    block_lanczos_ritz_values, lanczos_ritz_values, CsrMatrix, LaplacianOp, Mat, PAR_ROWS,
    RITZ_BLOCK,
};

/// Deterministic xorshift64* stream in [-1, 1).
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// A random sparse symmetric matrix with a ragged sparsity pattern:
/// some dense rows, some empty, row lengths varying with the row index
/// so block boundaries and remainders are all exercised.
fn ragged_symmetric(n: usize, seed: u64) -> CsrMatrix {
    let mut next = rng(seed);
    let mut dense = Mat::zeros(n, n);
    for i in 0..n {
        // Row i keeps entries at strides that depend on i: row 0 is
        // dense, later rows thin out, every 7th row stays empty.
        if i % 7 == 3 {
            continue;
        }
        let stride = 1 + i % 5;
        let mut j = i % stride;
        while j < n {
            let v = next();
            dense[(i, j)] = v;
            dense[(j, i)] = v;
            j += stride;
        }
    }
    CsrMatrix::from_dense(&dense, 0.0)
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut next = rng(seed);
    (0..n).map(|_| next()).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: lane {i} ({x} vs {y})");
    }
}

/// Sizes straddling every kernel regime: sub-block, one block, a ragged
/// tail past a block boundary, and past the `PAR_ROWS` parallel cutover.
fn probe_sizes() -> Vec<usize> {
    vec![1, 3, 17, 64, 128, 131, 300, PAR_ROWS + 37]
}

#[test]
fn matvec_into_is_bit_identical_to_matvec() {
    for (case, n) in probe_sizes().into_iter().enumerate() {
        let m = ragged_symmetric(n, 1000 + case as u64);
        let x = random_vec(n, 2000 + case as u64);
        let reference = m.matvec(&x);
        let mut y = vec![f64::NAN; n];
        m.matvec_into(&x, &mut y);
        assert_bits_eq(&y, &reference, &format!("matvec_into n={n}"));
        // And through the trait object, which the solvers call.
        let op: &dyn LaplacianOp = &m;
        let mut z = vec![f64::NAN; n];
        op.matvec_into(&x, &mut z);
        assert_bits_eq(&z, &reference, &format!("dyn matvec_into n={n}"));
    }
}

#[test]
fn matvec_multi_is_bit_identical_to_k_singles() {
    for (case, n) in probe_sizes().into_iter().enumerate() {
        for k in [1usize, 2, 3, RITZ_BLOCK, RITZ_BLOCK + 3] {
            let m = ragged_symmetric(n, 3000 + case as u64);
            let xs: Vec<Vec<f64>> =
                (0..k).map(|j| random_vec(n, 4000 + case as u64 * 31 + j as u64)).collect();
            let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
            let multi = m.matvec_multi(&refs);
            assert_eq!(multi.len(), k);
            for (j, x) in xs.iter().enumerate() {
                let single = m.matvec(x);
                assert_bits_eq(&multi[j], &single, &format!("matvec_multi n={n} k={k} rhs={j}"));
            }
            // The trait's block entry point must route to the same kernel.
            let op: &dyn LaplacianOp = &m;
            let block = op.matvec_block(&refs);
            for (j, x) in xs.iter().enumerate() {
                let single = m.matvec(x);
                assert_bits_eq(&block[j], &single, &format!("matvec_block n={n} k={k} rhs={j}"));
            }
        }
    }
}

#[test]
fn dense_fallback_matvec_into_matches_matvec() {
    for n in [1usize, 5, 33] {
        let mut next = rng(7000 + n as u64);
        let mut dense = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                dense[(i, j)] = v;
                dense[(j, i)] = v;
            }
        }
        let x = random_vec(n, 8000 + n as u64);
        let reference = dense.matvec(&x);
        let mut y = vec![f64::NAN; n];
        LaplacianOp::matvec_into(&dense, &x, &mut y);
        assert_bits_eq(&y, &reference, &format!("Mat matvec_into n={n}"));
    }
}

/// PSD test matrix: BᵀB for random B, so Lanczos sees a realistic
/// Laplacian-like spectrum (non-negative, clustered near zero).
fn random_psd(n: usize, seed: u64) -> CsrMatrix {
    let mut next = rng(seed);
    let mut b = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = next();
        }
    }
    let psd = b.transpose().matmul(&b);
    CsrMatrix::from_dense(&psd, 1e-15)
}

#[test]
fn block_lanczos_matches_plain_lanczos_within_tolerance() {
    for n in [8usize, 24, 48] {
        let m = random_psd(n, 500 + n as u64);
        let plain = lanczos_ritz_values(&m, n, 99);
        for block in [2usize, 4, RITZ_BLOCK] {
            let blocked = block_lanczos_ritz_values(&m, n, 99, block);
            assert_eq!(blocked.len(), plain.len(), "n={n} block={block}");
            for (a, b) in blocked.iter().zip(&plain) {
                assert!((a - b).abs() <= 1e-7 * (1.0 + b.abs()), "n={n} block={block}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn block_lanczos_with_block_one_is_exactly_plain_lanczos() {
    for n in [6usize, 20] {
        let m = random_psd(n, 900 + n as u64);
        let plain = lanczos_ritz_values(&m, n, 7);
        let blocked = block_lanczos_ritz_values(&m, n, 7, 1);
        assert_bits_eq(&blocked, &plain, &format!("block=1 n={n}"));
    }
}
