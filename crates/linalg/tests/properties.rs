//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qtda_linalg::{
    eigen::SymEigen,
    expm::{expm_i_symmetric, expm_taylor},
    gershgorin::{max_eigenvalue_bound, min_eigenvalue_bound},
    rank::{nullity_f64, rank_exact, rank_f64, rank_integral, DEFAULT_RANK_TOL},
    CMat, CsrMatrix, Mat, C64,
};

/// Strategy: a triplet list over a small matrix shape, deliberately
/// unsorted, with duplicates likely (coordinates drawn from a tiny
/// domain) and values from {-1, 0, 1, 2} so exact cancellations to zero
/// actually occur.
fn arb_triplets() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..7, 1usize..7).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -1i64..=2).prop_map(|(r, c, v)| (r, c, v as f64));
        proptest::collection::vec(entry, 0..40).prop_map(move |triplets| (rows, cols, triplets))
    })
}

/// Strategy: a small symmetric matrix with entries in [-3, 3].
fn symmetric_mat(max_n: usize) -> impl Strategy<Value = Mat> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |vals| {
            let raw = Mat::from_fn(n, n, |i, j| vals[i * n + j]);
            raw.add(&raw.transpose()).scale(0.5)
        })
    })
}

/// Strategy: a small integer matrix with entries in {-2..2}.
fn int_mat(max_m: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1..=max_m, 1..=max_n).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(-2i64..=2, n), m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_reconstruction(a in symmetric_mat(8)) {
        let e = SymEigen::decompose(&a);
        prop_assert!(e.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn eigenvalues_within_gershgorin_bounds(a in symmetric_mat(8)) {
        let vals = SymEigen::eigenvalues(&a);
        let hi = max_eigenvalue_bound(&a);
        let lo = min_eigenvalue_bound(&a);
        for v in vals {
            prop_assert!(v <= hi + 1e-9);
            prop_assert!(v >= lo - 1e-9);
        }
    }

    #[test]
    fn eigenvectors_orthonormal(a in symmetric_mat(8)) {
        let e = SymEigen::decompose(&a);
        let n = a.rows();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        prop_assert!(vtv.max_abs_diff(&Mat::identity(n)) < 1e-8);
    }

    #[test]
    fn trace_is_eigenvalue_sum(a in symmetric_mat(8)) {
        let vals = SymEigen::eigenvalues(&a);
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn exact_and_float_rank_agree(rows in int_mat(6, 6)) {
        let exact = rank_exact(&rows).expect("no overflow at this size");
        let m = Mat::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| x as f64).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        prop_assert_eq!(exact, rank_f64(&m, DEFAULT_RANK_TOL));
        prop_assert_eq!(exact, rank_integral(&m));
    }

    #[test]
    fn rank_nullity_sums_to_cols(rows in int_mat(6, 6)) {
        let m = Mat::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| x as f64).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        prop_assert_eq!(
            rank_f64(&m, DEFAULT_RANK_TOL) + nullity_f64(&m, DEFAULT_RANK_TOL),
            m.cols()
        );
    }

    #[test]
    fn rank_bounded_by_dimensions(rows in int_mat(5, 7)) {
        let r = rank_exact(&rows).unwrap();
        prop_assert!(r <= rows.len());
        prop_assert!(r <= rows[0].len());
    }

    #[test]
    fn rank_invariant_under_transpose(rows in int_mat(5, 5)) {
        let m = Mat::from_rows(
            &rows.iter().map(|r| r.iter().map(|&x| x as f64).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        prop_assert_eq!(rank_integral(&m), rank_integral(&m.transpose()));
    }

    #[test]
    fn expm_is_unitary(a in symmetric_mat(6), t in -2.0f64..2.0) {
        let u = expm_i_symmetric(&a, t);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn expm_spectral_matches_taylor(a in symmetric_mat(5), t in -1.5f64..1.5) {
        let spectral = expm_i_symmetric(&a, t);
        let ih = CMat::from_real(&a).scale(C64::new(0.0, t));
        let taylor = expm_taylor(&ih);
        prop_assert!(spectral.max_abs_diff(&taylor) < 1e-8);
    }

    #[test]
    fn matmul_associative(a in symmetric_mat(5), b in symmetric_mat(5)) {
        // Resize b to a's shape by embedding; keeps strategy simple.
        let n = a.rows().min(b.rows());
        let a2 = Mat::from_fn(n, n, |i, j| a[(i, j)]);
        let b2 = Mat::from_fn(n, n, |i, j| b[(i, j)]);
        let c = a2.add(&b2);
        let lhs = a2.matmul(&b2).matmul(&c);
        let rhs = a2.matmul(&b2.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-7);
    }

    /// `from_triplets` contract on arbitrary (unsorted, duplicated,
    /// cancelling) triplet soups: duplicates sum, exact zeros are
    /// dropped from storage, and every row — including trailing empty
    /// ones — is represented.
    #[test]
    fn csr_from_triplets_sums_drops_and_represents_all_rows(
        (rows, cols, triplets) in arb_triplets()
    ) {
        let csr = CsrMatrix::from_triplets(rows, cols, triplets.clone());

        // Reference: naive dense accumulation of the same triplets.
        let mut dense = Mat::zeros(rows, cols);
        for &(r, c, v) in &triplets {
            dense[(r, c)] += v;
        }
        prop_assert_eq!(csr.n_rows(), rows);
        prop_assert_eq!(csr.n_cols(), cols);
        prop_assert!(csr.to_dense().max_abs_diff(&dense) < 1e-12);

        // Exact zeros (including duplicate groups summing to zero) are
        // not stored.
        let expected_nnz = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| (r, c)))
            .filter(|&(r, c)| dense[(r, c)] != 0.0)
            .count();
        prop_assert_eq!(csr.nnz(), expected_nnz);

        // Every row is addressable: row_entries(i) must not panic even
        // for empty/trailing rows, and matvec sees the full height.
        for i in 0..rows {
            let row_sum: f64 = csr.row_entries(i).map(|(_, &v)| v).sum();
            let dense_sum: f64 = dense.row(i).iter().sum();
            prop_assert!((row_sum - dense_sum).abs() < 1e-12, "row {}", i);
        }
        let y = csr.matvec(&vec![1.0; cols]);
        prop_assert_eq!(y.len(), rows);
    }

    #[test]
    fn kron_of_unitaries_is_unitary(t1 in 0.0f64..6.2, t2 in 0.0f64..6.2) {
        let u1 = CMat::from_rows(&[
            vec![C64::cis(t1), C64::ZERO],
            vec![C64::ZERO, C64::cis(-t1)],
        ]);
        let c = t2.cos();
        let s = t2.sin();
        let u2 = CMat::from_rows(&[
            vec![C64::real(c), C64::real(-s)],
            vec![C64::real(s), C64::real(c)],
        ]);
        prop_assert!(u1.kron(&u2).is_unitary(1e-10));
    }
}
