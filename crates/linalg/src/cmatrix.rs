//! Dense complex matrices (row-major), including the Kronecker product
//! used to build Pauli-string operators.

use crate::complex::C64;
use crate::matrix::Mat;
use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row count above which complex matrix products go row-parallel.
const PAR_ROWS: usize = 64;

/// A dense complex matrix, row-major.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// An `rows × cols` matrix of complex zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat { rows, cols, data: vec![C64::ZERO; rows * cols] }
    }

    /// The `n × n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds from nested rows. Panics if ragged.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        CMat { rows: r, cols: c, data: rows.concat() }
    }

    /// Builds by evaluating `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Promotes a real matrix.
    pub fn from_real(m: &Mat) -> Self {
        CMat::from_fn(m.rows(), m.cols(), |i, j| C64::real(m[(i, j)]))
    }

    /// A square diagonal matrix.
    pub fn from_diag(d: &[C64]) -> Self {
        let mut m = CMat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> CMat {
        let mut t = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)].conj();
            }
        }
        t
    }

    /// Matrix sum.
    pub fn add(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect();
        CMat { rows: self.rows, cols: self.cols, data }
    }

    /// Matrix difference.
    pub fn sub(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect();
        CMat { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: C64) -> CMat {
        CMat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&a| a * s).collect() }
    }

    /// Matrix product, row-parallel past a threshold.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = CMat::zeros(m, n);

        let kernel = |(i, out_row): (usize, &mut [C64])| {
            let a_row = self.row(i);
            for (l, &a) in a_row.iter().enumerate().take(k) {
                if a == C64::ZERO {
                    continue;
                }
                let b_row = rhs.row(l);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if m >= PAR_ROWS && k * n >= 4096 {
            out.data.par_chunks_mut(n).enumerate().for_each(kernel);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(kernel);
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum()).collect()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let (ar, ac) = (self.rows, self.cols);
        let (br, bc) = (rhs.rows, rhs.cols);
        let mut out = CMat::zeros(ar * br, ac * bc);
        for i in 0..ar {
            for j in 0..ac {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for p in 0..br {
                    for q in 0..bc {
                        out[(i * br + p, j * bc + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Matrix power by repeated squaring (square matrices only).
    pub fn pow(&self, mut e: u64) -> CMat {
        assert_eq!(self.rows, self.cols, "pow of non-square matrix");
        let mut base = self.clone();
        let mut acc = CMat::identity(self.rows);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.matmul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.matmul(&base);
            }
        }
        acc
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Largest absolute entry-wise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &CMat) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// `true` when `self† · self ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.max_abs_diff(&CMat::identity(self.rows)) <= tol
    }

    /// `true` when Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !(self[(i, j)].conj()).approx_eq(self[(j, i)], tol) {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                write!(f, "{}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> CMat {
        CMat::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]])
    }

    fn pauli_z() -> CMat {
        CMat::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, -C64::ONE]])
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = pauli_x().matmul(&pauli_y());
        let iz = pauli_z().scale(C64::I);
        assert!(xy.max_abs_diff(&iz) < 1e-12);
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
        }
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = CMat::from_fn(3, 3, |i, j| C64::new(i as f64, j as f64));
        let b = CMat::from_fn(3, 3, |i, j| C64::new((i * j) as f64, -1.0));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        // X⊗Z = [[0, Z],[Z, 0]]
        assert!(xz[(0, 2)].approx_eq(C64::ONE, 1e-15));
        assert!(xz[(1, 3)].approx_eq(-C64::ONE, 1e-15));
        assert!(xz[(2, 0)].approx_eq(C64::ONE, 1e-15));
        assert!(xz[(0, 0)].approx_eq(C64::ZERO, 1e-15));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = pauli_x();
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = CMat::from_fn(2, 2, |i, j| C64::new((i + j) as f64 * 0.3, 0.1));
        let p3 = a.pow(3);
        let manual = a.matmul(&a).matmul(&a);
        assert!(p3.max_abs_diff(&manual) < 1e-12);
        assert!(a.pow(0).max_abs_diff(&CMat::identity(2)) < 1e-15);
        assert!(a.pow(1).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn trace_of_kron_is_product_of_traces() {
        let a = CMat::from_fn(2, 2, |i, j| C64::new(i as f64 + 1.0, j as f64));
        let b = CMat::from_fn(3, 3, |i, j| C64::new((i * j) as f64, 1.0));
        let lhs = a.kron(&b).trace();
        let rhs = a.trace() * b.trace();
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn parallel_matmul_matches_serial_complex() {
        let n = 96;
        let a =
            CMat::from_fn(n, n, |i, j| C64::new(((i + j) % 5) as f64 - 2.0, ((i * j) % 3) as f64));
        let b =
            CMat::from_fn(n, n, |i, j| C64::new(((2 * i + j) % 7) as f64 - 3.0, (i % 2) as f64));
        let fast = a.matmul(&b);
        let mut slow = CMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = C64::ZERO;
                for l in 0..n {
                    s += a[(i, l)] * b[(l, j)];
                }
                slow[(i, j)] = s;
            }
        }
        assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn from_real_preserves_entries() {
        let m = Mat::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let c = CMat::from_real(&m);
        assert!(c[(0, 1)].approx_eq(C64::real(-2.0), 0.0));
        assert!(c[(1, 0)].approx_eq(C64::real(0.5), 0.0));
    }
}
