//! Compressed sparse row (CSR) matrices and iterative spectral bounds.
//!
//! Combinatorial Laplacians are extremely sparse (row degree bounded by
//! the simplex adjacency), so large complexes want CSR storage, a
//! cache-blocked rayon-parallel `matvec` (with the allocation-free
//! [`CsrMatrix::matvec_into`] and multi-vector
//! [`CsrMatrix::matvec_multi`] variants for the Lanczos hot loops), and
//! *iterative* spectral estimates instead of dense factorisations:
//!
//! * [`CsrMatrix::lambda_max_power`] — power iteration for λ_max, with a
//!   certified safety margin so it can replace the (often loose)
//!   Gershgorin bound in the paper's Eq. 7 padding;
//! * the Hutchinson/Chebyshev kernel-dimension estimator built on top of
//!   this lives in `qtda-tda::spectral_betti` (the classical baseline of
//!   the paper's reference 15).

use rayon::prelude::*;

/// Row count above which the matvec kernels parallelise. Below it the
/// fork/join overhead of even a warm pool exceeds the kernel itself.
/// Tunable; the dispatch-threshold overview in
/// `qtda-core::pipeline` (next to `DEFAULT_SPARSE_THRESHOLD`)
/// documents how it composes with the backend routing.
pub const PAR_ROWS: usize = 256;

/// Rows per kernel block. The block schedule is **fixed**: rows are
/// always processed in contiguous `ROW_BLOCK`-row blocks and every
/// block is computed by exactly one worker with a fixed intra-row
/// summation order, so the output is bit-identical at any worker
/// count (1, 2, 8, …) and in any cache state.
const ROW_BLOCK: usize = 128;

/// One CSR row · vector product with a fixed 4-lane summation order.
///
/// Four independent accumulators over the unrolled body (the compiler
/// autovectorises the multiply-adds; the gathers on `x` stay scalar)
/// plus a scalar tail, combined as `(a₀+a₁)+(a₂+a₃)+tail`. The order
/// depends only on the row contents — never on threading — which is
/// what lets `matvec`, `matvec_into` and `matvec_multi` promise
/// bit-identical outputs.
#[inline]
fn row_kernel(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let len = vals.len();
    let quads = len / 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for q in 0..quads {
        let k = 4 * q;
        a0 += vals[k] * x[cols[k] as usize];
        a1 += vals[k + 1] * x[cols[k + 1] as usize];
        a2 += vals[k + 2] * x[cols[k + 2] as usize];
        a3 += vals[k + 3] * x[cols[k + 3] as usize];
    }
    let mut tail = 0.0f64;
    for k in 4 * quads..len {
        tail += vals[k] * x[cols[k] as usize];
    }
    (a0 + a1) + (a2 + a3) + tail
}

/// [`row_kernel`] over all K lanes of a lane-major packed multi-vector
/// in **one pass over the row**: `packed[c·K + lane]` stands in for
/// lane's `x[c]`, so each matrix element is loaded once and fans out to
/// every lane as a broadcast × contiguous-K-slice multiply-add (the
/// shape the autovectoriser turns into vector FMAs — no gathers at
/// all). Per lane the accumulator structure and combination order match
/// [`row_kernel`] exactly (`a₀`–`a₃` quad partials in element order,
/// combined `(a₀+a₁)+(a₂+a₃)+tail`), so each lane's result is
/// bit-identical to a single-vector call.
///
/// `acc` is `4·K` caller-provided scratch (the quad partials,
/// lane-major) and `out` receives the K per-lane results.
#[inline]
fn row_kernel_multi(cols: &[u32], vals: &[f64], packed: &[f64], acc: &mut [f64], out: &mut [f64]) {
    let k = out.len();
    debug_assert_eq!(acc.len(), 4 * k);
    let len = vals.len();
    let quads = len / 4;
    acc.fill(0.0);
    let (a0, rest) = acc.split_at_mut(k);
    let (a1, rest) = rest.split_at_mut(k);
    let (a2, a3) = rest.split_at_mut(k);
    for q in 0..quads {
        let e = 4 * q;
        let p0 = &packed[cols[e] as usize * k..][..k];
        let v0 = vals[e];
        for (a, p) in a0.iter_mut().zip(p0) {
            *a += v0 * p;
        }
        let p1 = &packed[cols[e + 1] as usize * k..][..k];
        let v1 = vals[e + 1];
        for (a, p) in a1.iter_mut().zip(p1) {
            *a += v1 * p;
        }
        let p2 = &packed[cols[e + 2] as usize * k..][..k];
        let v2 = vals[e + 2];
        for (a, p) in a2.iter_mut().zip(p2) {
            *a += v2 * p;
        }
        let p3 = &packed[cols[e + 3] as usize * k..][..k];
        let v3 = vals[e + 3];
        for (a, p) in a3.iter_mut().zip(p3) {
            *a += v3 * p;
        }
    }
    // Tail partial, accumulated in `out` itself.
    out.fill(0.0);
    for e in 4 * quads..len {
        let p = &packed[cols[e] as usize * k..][..k];
        let v = vals[e];
        for (t, pv) in out.iter_mut().zip(p) {
            *t += v * pv;
        }
    }
    for j in 0..k {
        let tail = out[j];
        out[j] = (a0[j] + a1[j]) + (a2[j] + a3[j]) + tail;
    }
}

/// [`row_kernel_multi`] with the lane count `K` fixed at compile time.
/// Same arithmetic, same per-lane summation order (bit-identical), but
/// the `K`-length inner loops become straight-line code over `[f64; K]`
/// accumulators — the runtime-length version spends more time in loop
/// setup than in multiply-adds for small `K`, while this compiles to a
/// broadcast and `K/width` vector FMAs per matrix element.
#[inline]
fn row_kernel_multi_fixed<const K: usize>(
    cols: &[u32],
    vals: &[f64],
    packed: &[f64],
    out: &mut [f64],
) {
    let len = vals.len();
    let quads = len / 4;
    let mut a0 = [0.0f64; K];
    let mut a1 = [0.0f64; K];
    let mut a2 = [0.0f64; K];
    let mut a3 = [0.0f64; K];
    for q in 0..quads {
        let e = 4 * q;
        let p0: &[f64; K] = packed[cols[e] as usize * K..][..K].try_into().unwrap();
        let v0 = vals[e];
        for j in 0..K {
            a0[j] += v0 * p0[j];
        }
        let p1: &[f64; K] = packed[cols[e + 1] as usize * K..][..K].try_into().unwrap();
        let v1 = vals[e + 1];
        for j in 0..K {
            a1[j] += v1 * p1[j];
        }
        let p2: &[f64; K] = packed[cols[e + 2] as usize * K..][..K].try_into().unwrap();
        let v2 = vals[e + 2];
        for j in 0..K {
            a2[j] += v2 * p2[j];
        }
        let p3: &[f64; K] = packed[cols[e + 3] as usize * K..][..K].try_into().unwrap();
        let v3 = vals[e + 3];
        for j in 0..K {
            a3[j] += v3 * p3[j];
        }
    }
    let mut tail = [0.0f64; K];
    for e in 4 * quads..len {
        let p: &[f64; K] = packed[cols[e] as usize * K..][..K].try_into().unwrap();
        let v = vals[e];
        for j in 0..K {
            tail[j] += v * p[j];
        }
    }
    for j in 0..K {
        out[j] = (a0[j] + a1[j]) + (a2[j] + a3[j]) + tail[j];
    }
}

/// A sparse matrix in compressed sparse row form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from (row, col, value) triplets; duplicates are summed,
    /// exact zeros dropped.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        row_ptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0;
        while i < entries.len() {
            let (r, c, mut v) = entries[i];
            assert!(r < n_rows && c < n_cols, "triplet out of bounds");
            i += 1;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                v += entries[i].2;
                i += 1;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if v != 0.0 {
                col_idx.push(c as u32);
                values.push(v);
            }
        }
        while current_row < n_rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// Builds from triplets **already sorted by `(row, col)`** — the
    /// O(nnz) fast path behind prefix slicing of a presorted triplet
    /// arena (`qtda-tda`'s `LaplacianFiltration`). Semantics match
    /// [`Self::from_triplets`] exactly (duplicates summed in slice
    /// order, exact-zero sums dropped) minus its O(nnz log nnz) sort.
    /// Debug builds verify the sort invariant; release builds trust the
    /// caller.
    pub fn from_sorted_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(u32, u32, f64)],
    ) -> Self {
        debug_assert!(
            triplets.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "triplets must be sorted by (row, col)"
        );
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0;
        while i < triplets.len() {
            let (r, c, mut v) = triplets[i];
            let r = r as usize;
            assert!(r < n_rows && (c as usize) < n_cols, "triplet out of bounds");
            i += 1;
            while i < triplets.len() && triplets[i].0 as usize == r && triplets[i].1 == c {
                v += triplets[i].2;
                i += 1;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        while current_row < n_rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// The matrix obtained by adding `(row, col)`-sorted `triplets` to
    /// `self`, optionally **growing** to `n_rows × n_cols` — the
    /// incremental "extend from the previous slice" path for ascending
    /// ε-grids: the Laplacian at ε′ > ε is the ε matrix plus the
    /// triplets activated in `(ε, ε′]`, which may touch both old rows
    /// (a new coface coupling two old simplices) and the appended ones.
    /// One linear merge pass, `O(nnz + triplets.len() + n_rows)`; entry
    /// sums that cancel to exact zero are dropped, so the result is
    /// identical to a from-scratch [`Self::from_sorted_triplets`] over
    /// the concatenated triplet streams whenever the sums are exact
    /// (integer-valued Laplacians are).
    pub fn merge_sorted_triplets(
        &self,
        n_rows: usize,
        n_cols: usize,
        triplets: &[(u32, u32, f64)],
    ) -> Self {
        assert!(n_rows >= self.n_rows && n_cols >= self.n_cols, "merge must not shrink");
        debug_assert!(
            triplets.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "triplets must be sorted by (row, col)"
        );
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.values.len() + triplets.len());
        let mut values = Vec::with_capacity(self.values.len() + triplets.len());
        row_ptr.push(0);
        let mut t = 0usize; // cursor into `triplets`
        let push = |c: u32, v: f64, col_idx: &mut Vec<u32>, values: &mut Vec<f64>| {
            assert!((c as usize) < n_cols, "triplet out of bounds");
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        };
        for r in 0..n_rows {
            let (mut lo, hi) =
                if r < self.n_rows { (self.row_ptr[r], self.row_ptr[r + 1]) } else { (0, 0) };
            while t < triplets.len() && (triplets[t].0 as usize) == r {
                let c = triplets[t].1;
                // Emit existing entries strictly left of the new column.
                while lo < hi && self.col_idx[lo] < c {
                    push(self.col_idx[lo], self.values[lo], &mut col_idx, &mut values);
                    lo += 1;
                }
                // Fold every duplicate of (r, c) — old entry included.
                let mut v = 0.0;
                if lo < hi && self.col_idx[lo] == c {
                    v = self.values[lo];
                    lo += 1;
                }
                while t < triplets.len() && (triplets[t].0 as usize) == r && triplets[t].1 == c {
                    v += triplets[t].2;
                    t += 1;
                }
                push(c, v, &mut col_idx, &mut values);
            }
            while lo < hi {
                push(self.col_idx[lo], self.values[lo], &mut col_idx, &mut values);
                lo += 1;
            }
            row_ptr.push(col_idx.len());
        }
        assert!(t == triplets.len(), "triplet row out of bounds");
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// Converts a dense matrix (entries with |v| ≤ `drop_tol` dropped).
    pub fn from_dense(m: &crate::Mat, drop_tol: f64) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v.abs() > drop_tol {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(m.rows(), m.cols(), triplets)
    }

    /// Densifies (for tests and small systems).
    pub fn to_dense(&self) -> crate::Mat {
        let mut m = crate::Mat::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for (&c, &v) in self.row_entries(i) {
                m[(i, c as usize)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the `(col, value)` entries of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (&u32, &f64)> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi])
    }

    /// `y = A·x` (rayon-parallel over row blocks past [`PAR_ROWS`]).
    /// Allocates the output; the hot paths use [`Self::matvec_into`].
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free `y ← A·x` through the cache-blocked kernel.
    ///
    /// Rows are processed in fixed [`ROW_BLOCK`]-row blocks (parallel
    /// past [`PAR_ROWS`], serial below); each row sums through
    /// [`row_kernel`]'s fixed 4-lane order, so the result is
    /// bit-identical to [`Self::matvec`] at any worker count.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "output dimension mismatch");
        let block = |b: usize, out: &mut [f64]| {
            let base = b * ROW_BLOCK;
            for (r, slot) in out.iter_mut().enumerate() {
                let i = base + r;
                let lo = self.row_ptr[i];
                let hi = self.row_ptr[i + 1];
                *slot = row_kernel(&self.col_idx[lo..hi], &self.values[lo..hi], x);
            }
        };
        if self.n_rows >= PAR_ROWS {
            y.par_chunks_mut(ROW_BLOCK).enumerate().for_each(|(b, out)| block(b, out));
        } else {
            for (b, out) in y.chunks_mut(ROW_BLOCK).enumerate() {
                block(b, out);
            }
        }
    }

    /// Multi-vector product: `ys[j] = A·xs[j]` for K right-hand sides in
    /// **one pass over the matrix** — each row's indices and values are
    /// loaded once and reused for every vector, amortising the memory
    /// traffic that dominates sparse matvec. Each output is bit-identical
    /// to the corresponding single [`Self::matvec`] call.
    pub fn matvec_multi(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        let k = xs.len();
        let mut flat = vec![0.0; self.n_rows * k];
        self.matvec_multi_into(xs, &mut flat);
        (0..k).map(|j| (0..self.n_rows).map(|i| flat[i * k + j]).collect()).collect()
    }

    /// The multi-vector kernel behind [`Self::matvec_multi`] (one
    /// lane-major packing pass, then no per-row allocation).
    ///
    /// `y` is row-major with stride `xs.len()`:
    /// `y[i·K + j] = (A·xs[j])[i]`. The right-hand sides are first
    /// packed lane-major (`packed[c·K + j] = xs[j][c]`) so one cache
    /// line serves every lane's gather of a column — with K separate
    /// vectors the gather working set is K× larger and dominates the
    /// kernel on out-of-cache operators. The flat layout keeps the
    /// parallel block schedule identical to [`Self::matvec_into`]
    /// (fixed [`ROW_BLOCK`]-row blocks, each touched by one worker) and
    /// each lane keeps [`row_kernel`]'s summation order, so the
    /// determinism contract carries over unchanged.
    pub fn matvec_multi_into(&self, xs: &[&[f64]], y: &mut [f64]) {
        let k = xs.len();
        for x in xs {
            assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        }
        assert_eq!(y.len(), self.n_rows * k, "output dimension mismatch");
        if k == 0 {
            return;
        }
        let mut packed = vec![0.0f64; self.n_cols * k];
        // Column-outer packing order: writes stream sequentially through
        // `packed` (the lane-outer order would touch each cache line K
        // times, half a kernel's worth of traffic by itself).
        for (c, line) in packed.chunks_mut(k).enumerate() {
            for (slot, x) in line.iter_mut().zip(xs) {
                *slot = x[c];
            }
        }
        let packed = &packed;
        let block = |b: usize, out: &mut [f64]| {
            let base = b * ROW_BLOCK;
            let mut acc = vec![0.0f64; 4 * k];
            for (r, slots) in out.chunks_mut(k).enumerate() {
                let i = base + r;
                let lo = self.row_ptr[i];
                let hi = self.row_ptr[i + 1];
                let cols = &self.col_idx[lo..hi];
                let vals = &self.values[lo..hi];
                // The powers of two the spectrum route actually uses get
                // the unrolled fixed-width kernel; anything else takes
                // the runtime-width fallback (identical bits either way).
                match k {
                    2 => row_kernel_multi_fixed::<2>(cols, vals, packed, slots),
                    4 => row_kernel_multi_fixed::<4>(cols, vals, packed, slots),
                    8 => row_kernel_multi_fixed::<8>(cols, vals, packed, slots),
                    _ => row_kernel_multi(cols, vals, packed, &mut acc, slots),
                }
            }
        };
        if self.n_rows >= PAR_ROWS {
            y.par_chunks_mut(ROW_BLOCK * k).enumerate().for_each(|(b, out)| block(b, out));
        } else {
            for (b, out) in y.chunks_mut(ROW_BLOCK * k).enumerate() {
                block(b, out);
            }
        }
    }

    /// Quadratic form `xᵀAx` (square matrices).
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        self.matvec(x).iter().zip(x).map(|(y, xi)| y * xi).sum()
    }

    /// Embeds `self` into the top-left of an `n × n` matrix whose
    /// remaining diagonal is `fill` (the Eq. 7 padding shape), staying
    /// sparse. Panics on a non-square input or a shrinking target.
    pub fn embed_top_left(&self, n: usize, fill: f64) -> CsrMatrix {
        assert_eq!(self.n_rows, self.n_cols, "padding requires a square matrix");
        assert!(n >= self.n_rows, "target must not shrink the matrix");
        let extra = if fill != 0.0 { n - self.n_rows } else { 0 };
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.extend_from_slice(&self.row_ptr);
        let mut col_idx = Vec::with_capacity(self.col_idx.len() + extra);
        col_idx.extend_from_slice(&self.col_idx);
        let mut values = Vec::with_capacity(self.values.len() + extra);
        values.extend_from_slice(&self.values);
        for i in self.n_rows..n {
            if fill != 0.0 {
                col_idx.push(i as u32);
                values.push(fill);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { n_rows: n, n_cols: n, row_ptr, col_idx, values }
    }

    /// The matrix scaled by `s`, staying sparse. Scaling by exactly zero
    /// drops every stored entry (keeps the "no explicit zeros" invariant).
    pub fn scale(&self, s: f64) -> CsrMatrix {
        if s == 0.0 {
            return CsrMatrix::from_triplets(self.n_rows, self.n_cols, Vec::new());
        }
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Gershgorin upper bound on the spectrum (square, any symmetry).
    pub fn gershgorin_max(&self) -> f64 {
        assert_eq!(self.n_rows, self.n_cols, "square matrices only");
        if self.n_rows == 0 {
            return 0.0;
        }
        (0..self.n_rows)
            .map(|i| {
                let mut diag = 0.0;
                let mut radius = 0.0;
                for (&c, &v) in self.row_entries(i) {
                    if c as usize == i {
                        diag = v;
                    } else {
                        radius += v.abs();
                    }
                }
                diag + radius
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Power iteration estimate of λ_max for a **symmetric PSD** matrix,
    /// inflated by the final Rayleigh residual so the returned value is a
    /// (probabilistic) upper bound suitable for the Eq. 7/9 rescale.
    /// Deterministic given `seed`. (Thin wrapper over the
    /// representation-generic [`crate::op::lambda_max_power`].)
    pub fn lambda_max_power(&self, iterations: usize, seed: u64) -> f64 {
        assert_eq!(self.n_rows, self.n_cols, "square matrices only");
        crate::op::lambda_max_power(self, iterations, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymEigen;
    use crate::Mat;

    fn laplacian_path4() -> Mat {
        Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ])
    }

    #[test]
    fn dense_roundtrip() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        assert_eq!(csr.nnz(), 10);
        assert!(csr.to_dense().max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn triplets_sum_duplicates_and_drop_zeros() {
        let csr = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0), (1, 0, 0.0)],
        );
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense()[(0, 0)], 3.0);
        assert_eq!(csr.to_dense()[(1, 0)], 0.0);
    }

    #[test]
    fn from_sorted_triplets_matches_from_triplets() {
        let triplets = vec![
            (0u32, 0u32, 1.0),
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 0, -1.0),
        ];
        let sorted = CsrMatrix::from_sorted_triplets(3, 3, &triplets);
        let general = CsrMatrix::from_triplets(
            3,
            3,
            triplets.iter().map(|&(r, c, v)| (r as usize, c as usize, v)),
        );
        assert_eq!(sorted, general, "the fast path must be structurally identical");
        assert_eq!(sorted.nnz(), 3, "duplicate (0,0) summed, cancelled (2,0) dropped");
        let empty = CsrMatrix::from_sorted_triplets(2, 2, &[]);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.n_rows(), 2);
    }

    #[test]
    fn merge_sorted_triplets_equals_full_rebuild() {
        // Prefix of a growing Laplacian-like matrix…
        let first = vec![(0u32, 0u32, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)];
        // …extended by triplets touching old rows, cancelling an old
        // entry, and introducing new trailing rows.
        let second = vec![
            (0u32, 1u32, 1.0), // cancels the old (0,1) = −1 exactly
            (0, 2, -1.0),
            (1, 1, 1.0),
            (2, 0, -1.0),
            (2, 2, 2.0),
        ];
        let base = CsrMatrix::from_sorted_triplets(2, 2, &first);
        let merged = base.merge_sorted_triplets(3, 3, &second);
        let all: Vec<(usize, usize, f64)> =
            first.iter().chain(&second).map(|&(r, c, v)| (r as usize, c as usize, v)).collect();
        let rebuilt = CsrMatrix::from_triplets(3, 3, all);
        assert_eq!(merged, rebuilt, "merge must be indistinguishable from a rebuild");
        assert_eq!(merged.to_dense()[(0, 1)], 0.0);
        // No-op merge keeps the matrix bit-identical.
        assert_eq!(base.merge_sorted_triplets(2, 2, &[]), base);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let sparse = csr.matvec(&x);
        let dense = m.matvec(&x);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn large_matvec_parallel_path() {
        let n = 600; // crosses PAR_ROWS
        let triplets: Vec<_> = (0..n)
            .flat_map(|i| {
                let mut row = vec![(i, i, 2.0)];
                if i + 1 < n {
                    row.push((i, i + 1, -1.0));
                    row.push((i + 1, i, -1.0));
                }
                row
            })
            .collect();
        let csr = CsrMatrix::from_triplets(n, n, triplets);
        let x = vec![1.0; n];
        let y = csr.matvec(&x);
        // Tridiagonal Laplacian-like: interior rows sum to 0.
        assert!((y[1]).abs() < 1e-12);
        assert!((y[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gershgorin_matches_dense_version() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        assert!((csr.gershgorin_max() - crate::gershgorin::max_eigenvalue_bound(&m)).abs() < 1e-15);
    }

    #[test]
    fn power_iteration_bounds_true_lambda_max() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let exact = SymEigen::eigenvalues(&m).last().copied().unwrap();
        let estimate = csr.lambda_max_power(200, 42);
        assert!(estimate >= exact - 1e-9, "estimate {estimate} < λ_max {exact}");
        assert!(estimate <= exact * 1.05 + 1e-9, "estimate {estimate} far above {exact}");
    }

    #[test]
    fn power_iteration_tighter_than_gershgorin() {
        // Path Laplacian: Gershgorin gives 4, true λ_max < 4.
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let power = csr.lambda_max_power(300, 7);
        assert!(power < csr.gershgorin_max(), "{power} vs {}", csr.gershgorin_max());
    }

    #[test]
    fn zero_matrix_lambda_max_is_zero() {
        let csr = CsrMatrix::from_triplets(5, 5, Vec::<(usize, usize, f64)>::new());
        assert_eq!(csr.lambda_max_power(50, 3), 0.0);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn quadratic_form_psd() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        for trial in 0..5 {
            let x: Vec<f64> = (0..4).map(|i| ((i * 7 + trial * 3) % 5) as f64 - 2.0).collect();
            assert!(csr.quadratic_form(&x) >= -1e-12, "Laplacians are PSD");
        }
    }

    #[test]
    fn empty_rows_handled() {
        let csr = CsrMatrix::from_triplets(3, 3, vec![(2, 0, 1.0)]);
        assert_eq!(csr.matvec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 1.0]);
    }

    /// A pseudo-random sparse Laplacian-shaped matrix crossing the
    /// parallel threshold, with ragged row lengths so the unrolled
    /// kernel's quad body and scalar tail both run.
    fn ragged_csr(n: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0 + (next() % 7) as f64));
            let deg = (next() % 9) as usize; // 0..=8 off-diagonals
            for _ in 0..deg {
                let j = (next() as usize) % n;
                let v = (next() % 5) as f64 - 2.0;
                triplets.push((i, j, v));
            }
        }
        CsrMatrix::from_triplets(n, n, triplets)
    }

    #[test]
    fn matvec_into_is_bit_identical_to_matvec() {
        for n in [3usize, 57, 600] {
            let csr = ragged_csr(n, 0xBEEF + n as u64);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let alloc = csr.matvec(&x);
            let mut into = vec![f64::NAN; n];
            csr.matvec_into(&x, &mut into);
            for (a, b) in alloc.iter().zip(&into) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn matvec_multi_is_bit_identical_to_singles() {
        for n in [5usize, 130, 700] {
            let csr = ragged_csr(n, 0xACE + n as u64);
            let xs: Vec<Vec<f64>> = (0..6)
                .map(|j| (0..n).map(|i| ((i + 13 * j) as f64 * 0.11).cos()).collect())
                .collect();
            let refs: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
            let multi = csr.matvec_multi(&refs);
            for (j, x) in xs.iter().enumerate() {
                let single = csr.matvec(x);
                for (a, b) in multi[j].iter().zip(&single) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n = {n}, rhs {j}");
                }
            }
        }
    }

    #[test]
    fn matvec_multi_zero_vectors() {
        let csr = ragged_csr(40, 9);
        assert!(csr.matvec_multi(&[]).is_empty());
        let mut flat = Vec::new();
        csr.matvec_multi_into(&[], &mut flat); // no-op, must not panic
    }
}
