//! Solver cost profiling: how many Laplacian applications an estimate
//! actually burned.
//!
//! Berry et al. ("Analyzing Prospects for Quantum Advantage in TDA")
//! frame QTDA cost in **Laplacian applications per estimate** — the
//! quantity the iterative solvers here spend but, until this module,
//! never surfaced. A [`SolveProfile`] carries those counts: matvecs,
//! Lanczos iterations, invariant-subspace restarts, and the block
//! width a run actually took.
//!
//! Collection is scoped and thread-local: [`profiled`] installs an
//! accumulator for the duration of a closure and returns what the
//! enclosed solver calls ([`lanczos_ritz_values`],
//! [`block_lanczos_ritz_values`], the power iterations) recorded.
//! Scopes nest — an inner scope's counts also roll up into its outer
//! scope — and each scope lives on the thread that opened it, which is
//! exactly the shape of the serving stack's work units (one unit, one
//! thread, one profile). Outside any scope the recording hooks are a
//! thread-local check and a no-op, so unprofiled callers pay nothing
//! measurable; and since the hooks only *count*, profiling can never
//! perturb seeds, ordering, or numeric results.
//!
//! [`lanczos_ritz_values`]: crate::lanczos::lanczos_ritz_values
//! [`block_lanczos_ritz_values`]: crate::lanczos::block_lanczos_ritz_values

use std::cell::RefCell;

/// Iterative-solver cost counters for one profiled scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveProfile {
    /// Operator applications (`A·x`; a block application of width `w`
    /// counts `w`). The paper's headline cost unit.
    pub matvecs: u64,
    /// Lanczos basis columns advanced (single-vector iterations, or
    /// columns taken per block pass).
    pub lanczos_iterations: u64,
    /// Invariant-subspace restarts: fresh seeded directions injected
    /// when a residual (block) went rank-deficient.
    pub restarts: u64,
    /// Widest Lanczos block the scope ran with (1 = the single-vector
    /// recurrence, 0 = no Lanczos run at all).
    pub block_width: u64,
}

impl SolveProfile {
    /// Folds another profile into this one: counts add, the block
    /// width takes the maximum.
    pub fn merge(&mut self, other: &SolveProfile) {
        self.matvecs += other.matvecs;
        self.lanczos_iterations += other.lanczos_iterations;
        self.restarts += other.restarts;
        self.block_width = self.block_width.max(other.block_width);
    }

    /// Whether nothing was recorded (e.g. a dense-route or cache-hit
    /// unit that never touched an iterative solver).
    pub fn is_empty(&self) -> bool {
        *self == SolveProfile::default()
    }
}

thread_local! {
    /// The stack of open profiling scopes on this thread; empty means
    /// profiling is off and every hook is a no-op.
    static SCOPES: RefCell<Vec<SolveProfile>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a fresh profiling scope on this thread and returns
/// its result alongside everything the enclosed solver calls recorded.
/// Scopes nest: the inner scope's counts also roll up into the outer
/// one (even on unwind), so a coarse scope never under-reports.
pub fn profiled<T>(f: impl FnOnce() -> T) -> (T, SolveProfile) {
    /// Pops the scope on drop so a panicking `f` cannot leak it.
    struct ScopeGuard;
    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPES.with(|scopes| {
                let mut scopes = scopes.borrow_mut();
                if let Some(finished) = scopes.pop() {
                    if let Some(outer) = scopes.last_mut() {
                        outer.merge(&finished);
                    }
                }
            });
        }
    }
    SCOPES.with(|scopes| scopes.borrow_mut().push(SolveProfile::default()));
    let guard = ScopeGuard;
    let out = f();
    let profile = SCOPES.with(|scopes| *scopes.borrow().last().expect("profile scope still open"));
    drop(guard);
    (out, profile)
}

/// Records into the innermost open scope on this thread, if any. The
/// solvers call this; it is public so layers above can fold in costs
/// of their own.
#[inline]
pub fn record(f: impl FnOnce(&mut SolveProfile)) {
    SCOPES.with(|scopes| {
        if let Some(top) = scopes.borrow_mut().last_mut() {
            f(top);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_inside_a_scope() {
        record(|p| p.matvecs += 100); // no scope: dropped
        let ((), profile) = profiled(|| record(|p| p.matvecs += 3));
        assert_eq!(profile.matvecs, 3);
        let ((), empty) = profiled(|| ());
        assert!(empty.is_empty());
    }

    #[test]
    fn nested_scopes_roll_up() {
        let ((), outer) = profiled(|| {
            record(|p| p.matvecs += 1);
            let ((), inner) = profiled(|| {
                record(|p| {
                    p.matvecs += 10;
                    p.block_width = p.block_width.max(8);
                });
            });
            assert_eq!(inner.matvecs, 10);
        });
        assert_eq!(outer.matvecs, 11, "inner counts roll up into the outer scope");
        assert_eq!(outer.block_width, 8);
    }

    #[test]
    fn merge_adds_counts_and_maxes_width() {
        let mut a = SolveProfile { matvecs: 2, lanczos_iterations: 1, restarts: 0, block_width: 1 };
        let b = SolveProfile { matvecs: 3, lanczos_iterations: 4, restarts: 2, block_width: 8 };
        a.merge(&b);
        assert_eq!(
            a,
            SolveProfile { matvecs: 5, lanczos_iterations: 5, restarts: 2, block_width: 8 }
        );
    }
}
