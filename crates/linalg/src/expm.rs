//! Matrix exponentials.
//!
//! The QPE walk operator is `U = e^{iH}` for a real symmetric `H`
//! (the rescaled, padded combinatorial Laplacian). With the spectral
//! factorisation `H = V Λ Vᵀ` this is exactly
//! `U = V · diag(e^{iλ}) · Vᵀ` — unitary to machine precision, with no
//! truncation error. A scaled-and-squared Taylor exponential for general
//! complex matrices is provided as an independent cross-check and for
//! non-Hermitian experiments.

use crate::cmatrix::CMat;
use crate::complex::C64;
use crate::eigen::SymEigen;
use crate::matrix::Mat;

/// `e^{i·t·H}` for real symmetric `H`, via eigendecomposition.
pub fn expm_i_symmetric(h: &Mat, t: f64) -> CMat {
    let e = SymEigen::decompose(h);
    expm_from_eigen(&e, t)
}

/// `e^{i·t·H}` from a precomputed eigendecomposition of `H`.
pub fn expm_from_eigen(e: &SymEigen, t: f64) -> CMat {
    let v = CMat::from_real(&e.vectors);
    let d = CMat::from_diag(&e.values.iter().map(|&l| C64::cis(l * t)).collect::<Vec<_>>());
    v.matmul(&d).matmul(&v.adjoint())
}

/// `e^{A}` for a general complex matrix by scaling-and-squaring with a
/// truncated Taylor series. Accuracy target ~1e-12 for the modest norms
/// used in this workspace; primarily a cross-check for the spectral path.
pub fn expm_taylor(a: &CMat) -> CMat {
    assert_eq!(a.rows(), a.cols(), "expm of non-square matrix");
    let n = a.rows();
    // Scale so the 1-norm of the scaled matrix is ≲ 0.5.
    let norm = one_norm(a);
    let s = if norm > 0.5 { (norm / 0.5).log2().ceil() as u32 } else { 0 };
    let scaled = a.scale(C64::real(1.0 / (1u64 << s) as f64));

    // Taylor series with running term; 24 terms at ‖A‖≤0.5 is far below
    // f64 round-off.
    let mut result = CMat::identity(n);
    let mut term = CMat::identity(n);
    for k in 1..=24u64 {
        term = term.matmul(&scaled).scale(C64::real(1.0 / k as f64));
        result = result.add(&term);
    }
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

/// Maximum absolute column sum (the matrix 1-norm).
fn one_norm(a: &CMat) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let mut s = 0.0;
        for i in 0..a.rows() {
            s += a[(i, j)].abs();
        }
        best = best.max(s);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_of_zero_is_identity() {
        let u = expm_i_symmetric(&Mat::zeros(4, 4), 1.0);
        assert!(u.max_abs_diff(&CMat::identity(4)) < 1e-12);
    }

    #[test]
    fn diagonal_case_is_elementwise_phase() {
        let h = Mat::from_diag(&[0.0, 1.0, 2.0]);
        let u = expm_i_symmetric(&h, 1.0);
        for (i, &l) in [0.0, 1.0, 2.0].iter().enumerate() {
            assert!(u[(i, i)].approx_eq(C64::cis(l), 1e-12));
        }
        assert!(u[(0, 1)].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn result_is_unitary() {
        let h = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, 1.0],
            vec![0.0, 0.0, 1.0, 2.0],
        ]);
        let u = expm_i_symmetric(&h, 0.9);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn spectral_and_taylor_agree() {
        let h = Mat::from_rows(&[vec![1.0, 0.5, 0.0], vec![0.5, -1.0, 0.25], vec![0.0, 0.25, 0.5]]);
        let spectral = expm_i_symmetric(&h, 1.3);
        let ih = CMat::from_real(&h).scale(C64::new(0.0, 1.3));
        let taylor = expm_taylor(&ih);
        assert!(spectral.max_abs_diff(&taylor) < 1e-10);
    }

    #[test]
    fn group_property_u_t1_t2() {
        // e^{iH t1} · e^{iH t2} = e^{iH (t1+t2)}
        let h = Mat::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]);
        let u1 = expm_i_symmetric(&h, 0.4);
        let u2 = expm_i_symmetric(&h, 0.7);
        let u12 = expm_i_symmetric(&h, 1.1);
        assert!(u1.matmul(&u2).max_abs_diff(&u12) < 1e-11);
    }

    #[test]
    fn powers_match_time_scaling() {
        // (e^{iH})^4 = e^{i 4 H} — exactly the controlled-power ladder QPE needs.
        let h = Mat::from_rows(&[vec![1.0, 0.3], vec![0.3, -0.5]]);
        let u = expm_i_symmetric(&h, 1.0);
        let u4 = u.pow(4);
        let direct = expm_i_symmetric(&h, 4.0);
        assert!(u4.max_abs_diff(&direct) < 1e-10);
    }

    #[test]
    fn taylor_handles_larger_norms_via_scaling() {
        let a =
            CMat::from_fn(3, 3, |i, j| C64::new(((i + j) % 3) as f64, (i as f64 - j as f64) * 0.5));
        // exp(A) · exp(−A) = I for commuting pair (A, −A).
        let e1 = expm_taylor(&a);
        let e2 = expm_taylor(&a.scale(C64::real(-1.0)));
        assert!(e1.matmul(&e2).max_abs_diff(&CMat::identity(3)) < 1e-9);
    }
}
