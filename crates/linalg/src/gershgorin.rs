//! Gershgorin circle bounds on the spectrum of a square matrix.
//!
//! The paper (Eq. 7) pads the combinatorial Laplacian with
//! `λ̃_max/2 · I`, where `λ̃_max` is the Gershgorin upper bound
//! `max_i (a_ii + Σ_{j≠i} |a_ij|)`. For the worked example's Δ₁ the bound
//! is 6, matching Eq. 18.

use crate::matrix::Mat;

/// Upper Gershgorin bound: `max_i (a_ii + R_i)` with
/// `R_i = Σ_{j≠i} |a_ij|`. Panics if `a` is not square; returns 0 for the
/// empty matrix.
pub fn max_eigenvalue_bound(a: &Mat) -> f64 {
    assert!(a.is_square(), "Gershgorin bound requires a square matrix");
    if a.rows() == 0 {
        return 0.0;
    }
    (0..a.rows())
        .map(|i| {
            let radius: f64 =
                a.row(i).iter().enumerate().filter(|&(j, _)| j != i).map(|(_, v)| v.abs()).sum();
            a[(i, i)] + radius
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Lower Gershgorin bound: `min_i (a_ii − R_i)`. Returns 0 for the empty
/// matrix.
pub fn min_eigenvalue_bound(a: &Mat) -> f64 {
    assert!(a.is_square(), "Gershgorin bound requires a square matrix");
    if a.rows() == 0 {
        return 0.0;
    }
    (0..a.rows())
        .map(|i| {
            let radius: f64 =
                a.row(i).iter().enumerate().filter(|&(j, _)| j != i).map(|(_, v)| v.abs()).sum();
            a[(i, i)] - radius
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymEigen;

    #[test]
    fn diagonal_bound_is_max_entry() {
        let a = Mat::from_diag(&[1.0, 5.0, 3.0]);
        assert_eq!(max_eigenvalue_bound(&a), 5.0);
    }

    #[test]
    fn worked_example_bound_is_six() {
        // Δ₁ from Appendix A — the paper states λ̃_max = 6.
        let a = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -1.0, -1.0, 0.0],
            vec![0.0, 0.0, 3.0, -1.0, -1.0, 0.0],
            vec![0.0, -1.0, -1.0, 2.0, 1.0, -1.0],
            vec![0.0, -1.0, -1.0, 1.0, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, -1.0, 1.0, 2.0],
        ]);
        assert_eq!(max_eigenvalue_bound(&a), 6.0);
    }

    #[test]
    fn bound_dominates_true_spectrum() {
        let a =
            Mat::from_rows(&[vec![2.0, -1.0, 0.0], vec![-1.0, 2.0, -1.0], vec![0.0, -1.0, 2.0]]);
        let bound = max_eigenvalue_bound(&a);
        let max_eig = SymEigen::eigenvalues(&a).last().copied().unwrap();
        assert!(bound >= max_eig - 1e-12, "bound {bound} < λ_max {max_eig}");
    }

    #[test]
    fn lower_bound_below_spectrum() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let lo = min_eigenvalue_bound(&a);
        let min_eig = SymEigen::eigenvalues(&a)[0];
        assert!(lo <= min_eig + 1e-12);
    }
}
