//! Lanczos tridiagonalisation for sparse symmetric matrices.
//!
//! The dense Jacobi eigensolver is cubic with a dense-matrix footprint;
//! for the large, very sparse combinatorial Laplacians of bigger
//! complexes the Lanczos process needs only `matvec`s — it is therefore
//! written against the [`LaplacianOp`] abstraction and works for any
//! representation (CSR in practice; dense for cross-checks). With full
//! reorthogonalisation and a complete run (`m = n`) it reproduces the
//! exact spectrum (used by `qtda-core`'s `LanczosBackend`); with
//! `m ≪ n` it delivers the extremal Ritz values.

use crate::op::LaplacianOp;

/// Eigenvalues of a symmetric tridiagonal matrix by the implicit-shift
/// QL algorithm (EISPACK `tql1`). `diag` is the diagonal, `off` the
/// subdiagonal (`off.len() == diag.len() − 1`). Ascending order.
pub fn tridiagonal_eigenvalues(diag: &[f64], off: &[f64]) -> Vec<f64> {
    let n = diag.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(off.len() + 1, n, "off-diagonal length must be n − 1");
    let mut d = diag.to_vec();
    // e is padded to length n with a trailing zero (classic tql layout).
    let mut e: Vec<f64> = off.to_vec();
    e.push(0.0);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("NaN eigenvalue"));
    d
}

/// Runs `m` Lanczos iterations with full (twice-repeated)
/// reorthogonalisation and returns the Ritz values. With `m = n` on a
/// well-conditioned symmetric matrix this is the exact spectrum.
/// Deterministic given `seed`.
pub fn lanczos_ritz_values<A: LaplacianOp + ?Sized>(a: &A, m: usize, seed: u64) -> Vec<f64> {
    let n = a.dim();
    if n == 0 {
        return Vec::new();
    }
    let m = m.clamp(1, n);

    // Internal xorshift keeps linalg dependency-free.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::new();

    let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
    normalise(&mut v);
    basis.push(v);

    for j in 0..m {
        let vj = basis[j].clone();
        let mut w = a.matvec(&vj);
        let alpha = dot(&w, &vj);
        alphas.push(alpha);
        if j + 1 == m {
            break;
        }
        for (wi, vi) in w.iter_mut().zip(&vj) {
            *wi -= alpha * vi;
        }
        if let Some(prev) = j.checked_sub(1) {
            let beta_prev = betas[prev];
            for (wi, vi) in w.iter_mut().zip(&basis[prev]) {
                *wi -= beta_prev * vi;
            }
        }
        // Full reorthogonalisation, applied twice (Kahan's "twice is
        // enough" rule) to hold orthogonality at machine precision.
        for _ in 0..2 {
            for b in &basis {
                let proj = dot(&w, b);
                for (wi, bi) in w.iter_mut().zip(b) {
                    *wi -= proj * bi;
                }
            }
        }
        let beta = dot(&w, &w).sqrt();
        if beta < 1e-12 {
            // Invariant subspace exhausted: restart with a fresh random
            // direction orthogonal to the basis.
            let mut fresh: Vec<f64> = (0..n).map(|_| next()).collect();
            for b in &basis {
                let proj = dot(&fresh, b);
                for (fi, bi) in fresh.iter_mut().zip(b) {
                    *fi -= proj * bi;
                }
            }
            let norm = dot(&fresh, &fresh).sqrt();
            if norm < 1e-12 {
                break; // true dimension exhausted
            }
            for f in &mut fresh {
                *f /= norm;
            }
            betas.push(0.0);
            basis.push(fresh);
            continue;
        }
        betas.push(beta);
        for wi in &mut w {
            *wi /= beta;
        }
        basis.push(w);
    }

    tridiagonal_eigenvalues(&alphas, &betas[..alphas.len().saturating_sub(1)])
}

/// Kernel dimension of a symmetric PSD operator via a full Lanczos
/// run: Ritz values with `|λ| ≤ tol` (exact for `m = n`).
pub fn kernel_dim_lanczos<A: LaplacianOp + ?Sized>(a: &A, tol: f64, seed: u64) -> usize {
    lanczos_ritz_values(a, a.dim(), seed).iter().filter(|l| l.abs() <= tol).count()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalise(v: &mut [f64]) {
    let n = dot(v, v).sqrt().max(1e-300);
    for x in v {
        *x /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymEigen;
    use crate::sparse::CsrMatrix;
    use crate::Mat;

    fn assert_spectra_match(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn tridiagonal_known_spectrum() {
        // Tridiag(-1, 2, -1) of size n has eigenvalues 2−2cos(kπ/(n+1)).
        let n = 8;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let got = tridiagonal_eigenvalues(&diag, &off);
        let expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        assert_spectra_match(&got, &expect, 1e-10);
    }

    #[test]
    fn tridiagonal_diagonal_case() {
        let got = tridiagonal_eigenvalues(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        assert_spectra_match(&got, &[-1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn tridiagonal_single_entry() {
        assert_eq!(tridiagonal_eigenvalues(&[5.5], &[]), vec![5.5]);
    }

    #[test]
    fn full_lanczos_matches_jacobi() {
        let m = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -1.0, -1.0, 0.0],
            vec![0.0, 0.0, 3.0, -1.0, -1.0, 0.0],
            vec![0.0, -1.0, -1.0, 2.0, 1.0, -1.0],
            vec![0.0, -1.0, -1.0, 1.0, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, -1.0, 1.0, 2.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let lanczos = lanczos_ritz_values(&csr, 6, 17);
        let jacobi = SymEigen::eigenvalues(&m);
        assert_spectra_match(&lanczos, &jacobi, 1e-8);
    }

    #[test]
    fn full_lanczos_on_pseudo_random_matrix() {
        let n = 24;
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let raw = Mat::from_fn(n, n, |_, _| next());
        let sym = raw.add(&raw.transpose()).scale(0.5);
        let csr = CsrMatrix::from_dense(&sym, 0.0);
        let lanczos = lanczos_ritz_values(&csr, n, 3);
        let jacobi = SymEigen::eigenvalues(&sym);
        assert_spectra_match(&lanczos, &jacobi, 1e-7);
    }

    #[test]
    fn partial_lanczos_brackets_extremal_eigenvalues() {
        // 60×60 path Laplacian; 20 iterations must capture λ_min ≈ 0 and
        // λ_max ≈ 4 well.
        let n = 60;
        let triplets: Vec<_> = (0..n)
            .flat_map(|i| {
                let d = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
                let mut row = vec![(i, i, d)];
                if i + 1 < n {
                    row.push((i, i + 1, -1.0));
                    row.push((i + 1, i, -1.0));
                }
                row
            })
            .collect();
        let csr = CsrMatrix::from_triplets(n, n, triplets);
        let ritz = lanczos_ritz_values(&csr, 20, 5);
        let min = ritz.first().copied().unwrap();
        let max = ritz.last().copied().unwrap();
        // Extremal Ritz values converge first but not to machine
        // precision in 20 of 60 iterations; brackets are what matters.
        assert!(min.abs() < 0.01, "kernel Ritz value: {min}");
        assert!((max - 3.9973).abs() < 0.01, "top Ritz value: {max}");
    }

    #[test]
    fn kernel_dim_matches_dense_route() {
        // Degenerate kernel (two components → 2 zero eigenvalues) — the
        // hard case for plain Lanczos, handled by the restart logic.
        let m = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        assert_eq!(kernel_dim_lanczos(&csr, 1e-8, 11), SymEigen::kernel_dim(&m, 1e-8));
    }

    #[test]
    fn zero_matrix_full_kernel() {
        let csr = CsrMatrix::from_triplets(5, 5, Vec::<(usize, usize, f64)>::new());
        assert_eq!(kernel_dim_lanczos(&csr, 1e-10, 1), 5);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_triplets(0, 0, Vec::<(usize, usize, f64)>::new());
        assert!(lanczos_ritz_values(&csr, 3, 1).is_empty());
    }
}
