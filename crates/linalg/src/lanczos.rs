//! Lanczos tridiagonalisation for sparse symmetric matrices.
//!
//! The dense Jacobi eigensolver is cubic with a dense-matrix footprint;
//! for the large, very sparse combinatorial Laplacians of bigger
//! complexes the Lanczos process needs only `matvec`s — it is therefore
//! written against the [`LaplacianOp`] abstraction and works for any
//! representation (CSR in practice; dense for cross-checks). With full
//! reorthogonalisation and a complete run (`m = n`) it reproduces the
//! exact spectrum (used by `qtda-core`'s `LanczosBackend`); with
//! `m ≪ n` it delivers the extremal Ritz values.

use crate::op::LaplacianOp;
use crate::profile;

/// Eigenvalues of a symmetric tridiagonal matrix by the implicit-shift
/// QL algorithm (EISPACK `tql1`). `diag` is the diagonal, `off` the
/// subdiagonal (`off.len() == diag.len() − 1`). Ascending order.
pub fn tridiagonal_eigenvalues(diag: &[f64], off: &[f64]) -> Vec<f64> {
    let n = diag.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(off.len() + 1, n, "off-diagonal length must be n − 1");
    let mut d = diag.to_vec();
    // e is padded to length n with a trailing zero (classic tql layout).
    let mut e: Vec<f64> = off.to_vec();
    e.push(0.0);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                let shifted = d[i + 1] - p;
                r = (d[i] - shifted) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = shifted + p;
                g = c * r - b;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("NaN eigenvalue"));
    d
}

/// Eigenvalues of a symmetric tridiagonal matrix *with* the squared
/// first components of their eigenvectors — the Gaussian quadrature
/// rule of the tridiagonal's spectral measure seen from `e₁` (EISPACK
/// `tql2` restricted to the one eigenvector row that matters). Returns
/// `(node θ_j, weight τ_j²)` pairs, nodes ascending; the weights are
/// non-negative and sum to 1 (the rotations are orthogonal and the
/// tracked row starts as the unit vector `e₁`).
///
/// For a Lanczos tridiagonal T = QᵀAQ started at unit vector `v`, the
/// rule integrates `vᵀf(A)v ≈ Σ_j τ_j²·f(θ_j)` exactly for polynomials
/// of degree ≤ 2m−1 — the classical stochastic-Lanczos-quadrature
/// identity that makes truncated spectral sums accurate at m ≪ n.
/// The node update arithmetic is identical to
/// [`tridiagonal_eigenvalues`], so the returned nodes are bit-identical
/// to that routine's output on the same input.
pub fn tridiagonal_quadrature(diag: &[f64], off: &[f64]) -> Vec<(f64, f64)> {
    let n = diag.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(off.len() + 1, n, "off-diagonal length must be n − 1");
    let mut d = diag.to_vec();
    let mut e: Vec<f64> = off.to_vec();
    e.push(0.0);
    // First row of the accumulated eigenvector matrix, starting at e₁.
    let mut z = vec![0.0f64; n];
    z[0] = 1.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");

            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                let shifted = d[i + 1] - p;
                r = (d[i] - shifted) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = shifted + p;
                g = c * r - b;
                // The same Givens rotation, applied to the tracked
                // first eigenvector row.
                let zf = z[i + 1];
                z[i + 1] = s * z[i] + c * zf;
                z[i] = c * z[i] - s * zf;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    let mut pairs: Vec<(f64, f64)> =
        d.into_iter().zip(z).map(|(node, zi)| (node, zi * zi)).collect();
    // Stable sort by node: the same ordering pass as
    // `tridiagonal_eigenvalues`, weights riding along.
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN eigenvalue"));
    pairs
}

/// The internal xorshift stream (keeps linalg dependency-free).
fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

/// Runs `m` Lanczos iterations with full (twice-repeated)
/// reorthogonalisation and returns the Ritz values. With `m = n` on a
/// well-conditioned symmetric matrix this is the exact spectrum.
/// Deterministic given `seed`.
///
/// The hot loop is allocation-free: the matvec lands in a reused
/// scratch buffer via [`LaplacianOp::matvec_into`] and the scratch is
/// recycled into the basis column it becomes — the only per-iteration
/// allocation left is the stored basis vector itself.
pub fn lanczos_ritz_values<A: LaplacianOp + ?Sized>(a: &A, m: usize, seed: u64) -> Vec<f64> {
    let (alphas, betas) = lanczos_tridiagonal(a, m, seed);
    if alphas.is_empty() {
        return Vec::new();
    }
    tridiagonal_eigenvalues(&alphas, &betas[..alphas.len().saturating_sub(1)])
}

/// The Gaussian quadrature rule of `a`'s spectral measure seen from the
/// seeded Lanczos start vector `v`: `m` recurrence steps, then
/// [`tridiagonal_quadrature`] on the resulting coefficients. The
/// returned `Σ_j τ_j²·f(θ_j)` equals `vᵀf(A)v` exactly for polynomial
/// `f` of degree ≤ 2m−1 — the estimate a truncated run should average,
/// rather than treating m Ritz values as if they were the whole
/// spectrum. Nodes are bit-identical to [`lanczos_ritz_values`] under
/// the same `(a, m, seed)` (identical recurrence, identical QL node
/// arithmetic).
///
/// An invariant-subspace restart (β = 0) splits the tridiagonal into
/// blocks the rotations never mix, so restarted blocks get zero weight:
/// the rule still integrates `vᵀf(A)v` for the *original* start vector
/// exactly, which is the quantity being estimated.
pub fn lanczos_quadrature<A: LaplacianOp + ?Sized>(a: &A, m: usize, seed: u64) -> Vec<(f64, f64)> {
    let (alphas, betas) = lanczos_tridiagonal(a, m, seed);
    if alphas.is_empty() {
        return Vec::new();
    }
    tridiagonal_quadrature(&alphas, &betas[..alphas.len().saturating_sub(1)])
}

/// The Lanczos three-term recurrence with full reorthogonalisation:
/// up to `m` iterations from the seeded random start vector, returning
/// the tridiagonal coefficients `(α, β)` (`β.len() ≥ α.len() − 1`; the
/// eigen-consumers slice to exactly that). One body shared verbatim by
/// [`lanczos_ritz_values`] and [`lanczos_quadrature`], so both see
/// bit-identical coefficients — and the float-op sequence is exactly
/// the pre-extraction one, pinned by the block-Lanczos `block = 1`
/// bit-identity test.
fn lanczos_tridiagonal<A: LaplacianOp + ?Sized>(
    a: &A,
    m: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let n = a.dim();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let m = m.clamp(1, n);
    let mut next = xorshift(seed);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::new();

    let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
    normalise(&mut v);
    basis.push(v);

    profile::record(|p| p.block_width = p.block_width.max(1));
    // The matvec target / residual scratch, reused across iterations.
    let mut w = vec![0.0f64; n];
    for j in 0..m {
        a.matvec_into(&basis[j], &mut w);
        profile::record(|p| {
            p.matvecs += 1;
            p.lanczos_iterations += 1;
        });
        let alpha = dot(&w, &basis[j]);
        alphas.push(alpha);
        if j + 1 == m {
            break;
        }
        for (wi, vi) in w.iter_mut().zip(&basis[j]) {
            *wi -= alpha * vi;
        }
        if let Some(prev) = j.checked_sub(1) {
            let beta_prev = betas[prev];
            for (wi, vi) in w.iter_mut().zip(&basis[prev]) {
                *wi -= beta_prev * vi;
            }
        }
        // Full reorthogonalisation, applied twice (Kahan's "twice is
        // enough" rule) to hold orthogonality at machine precision.
        for _ in 0..2 {
            for b in &basis {
                let proj = dot(&w, b);
                for (wi, bi) in w.iter_mut().zip(b) {
                    *wi -= proj * bi;
                }
            }
        }
        let beta = dot(&w, &w).sqrt();
        if beta < 1e-12 {
            // Invariant subspace exhausted: restart with a fresh random
            // direction orthogonal to the basis.
            profile::record(|p| p.restarts += 1);
            for f in &mut w {
                *f = next();
            }
            for b in &basis {
                let proj = dot(&w, b);
                for (fi, bi) in w.iter_mut().zip(b) {
                    *fi -= proj * bi;
                }
            }
            let norm = dot(&w, &w).sqrt();
            if norm < 1e-12 {
                break; // true dimension exhausted
            }
            for f in &mut w {
                *f /= norm;
            }
            betas.push(0.0);
        } else {
            betas.push(beta);
            for wi in &mut w {
                *wi /= beta;
            }
        }
        // The scratch becomes the next basis column; a fresh scratch
        // takes its place for the next matvec.
        basis.push(std::mem::replace(&mut w, vec![0.0; n]));
    }

    (alphas, betas)
}

/// Default number of Ritz directions advanced per pass by
/// [`block_lanczos_ritz_values`]. Eight right-hand sides keep the
/// working set (block + one basis column) inside L2 for the complex
/// sizes the sparse path serves while amortising every basis-column and
/// arena load eight ways.
pub const RITZ_BLOCK: usize = 8;

/// Block Lanczos: advances `block` Ritz directions per pass over the
/// operator and the stored basis, returning Ritz values like
/// [`lanczos_ritz_values`] (exact spectrum for `m = n`). Deterministic
/// given `seed`; results agree with the single-vector recurrence to
/// solver precision but are not bit-identical to it.
///
/// Per pass, one [`LaplacianOp::matvec_block`] streams the matrix once
/// for the whole block, and the full reorthogonalisation streams each
/// stored basis column once against all `block` residuals — the two
/// memory-bound loops that dominate a full-spectrum run each touch
/// their operand `block`× less often. The projected matrix `T = QᵀAQ`
/// is numerically block-tridiagonal (semibandwidth `2·block − 1` up to
/// roundoff), so it goes through the `O(m²·w)` Givens band reduction
/// ([`crate::eigen::band_tridiagonal`]) to the same tridiagonal QL
/// solver the single-vector path uses; restarts that densify `T` fall
/// back to [`crate::eigen::householder_tridiagonal`].
///
/// Rank-deficient residual blocks (invariant subspaces — degenerate
/// Laplacian kernels hit this) are refilled with fresh seeded
/// directions orthogonal to everything so far, mirroring the
/// single-vector restart rule.
pub fn block_lanczos_ritz_values<A: LaplacianOp + ?Sized>(
    a: &A,
    m: usize,
    seed: u64,
    block: usize,
) -> Vec<f64> {
    let n = a.dim();
    if n == 0 {
        return Vec::new();
    }
    let m = m.clamp(1, n);
    let b = block.clamp(1, m);
    if b == 1 {
        // A one-wide block is the plain recurrence; skip the dense
        // projection machinery.
        return lanczos_ritz_values(a, m, seed);
    }
    let mut next = xorshift(seed);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    // Upper triangle (i ≤ j) of T = QᵀAQ, recorded from the
    // reorthogonalisation coefficients as columns are processed.
    let mut t = crate::Mat::zeros(m, m);

    let mut pending: Vec<Vec<f64>> = Vec::new();
    for _ in 0..b {
        if let Some(v) = fresh_direction(n, &mut next, &basis, &pending) {
            pending.push(v);
        }
    }

    while !pending.is_empty() && basis.len() < m {
        let start = basis.len();
        let take = pending.len().min(m - start);
        basis.extend(pending.drain(..take));
        pending.clear();

        // One pass over the operator for the whole block.
        let ws: Vec<Vec<f64>> = {
            let refs: Vec<&[f64]> = basis[start..].iter().map(|v| v.as_slice()).collect();
            a.matvec_block(&refs)
        };
        profile::record(|p| {
            p.matvecs += take as u64;
            p.lanczos_iterations += take as u64;
            p.block_width = p.block_width.max(b as u64);
        });

        // Orthogonalise every w against the full basis (twice), folding
        // the Galerkin coefficients into T. Column order is fixed, so
        // the run is deterministic. Each pass streams a basis column
        // once for all residuals in the block.
        let mut residuals = ws;
        for _pass in 0..2 {
            for (i, q) in basis.iter().enumerate() {
                for (jl, w) in residuals.iter_mut().enumerate() {
                    let j = start + jl;
                    let proj = dot(w, q);
                    if i <= j {
                        // First pass records qᵢ·(A qⱼ); the second adds
                        // its roundoff-sized correction.
                        t[(i, j)] += proj;
                    }
                    for (wi, qi) in w.iter_mut().zip(q) {
                        *wi -= proj * qi;
                    }
                }
            }
        }

        // The next block: orthonormalise the residuals among
        // themselves, topping up rank-deficient directions from the
        // seeded stream (invariant-subspace restart).
        let want = b.min(m - basis.len());
        for mut w in residuals {
            if pending.len() == want {
                break;
            }
            for q in &pending {
                let proj = dot(&w, q);
                for (wi, qi) in w.iter_mut().zip(q) {
                    *wi -= proj * qi;
                }
            }
            let norm = dot(&w, &w).sqrt();
            if norm >= 1e-10 {
                for wi in &mut w {
                    *wi /= norm;
                }
                pending.push(w);
            }
        }
        while pending.len() < want {
            match fresh_direction(n, &mut next, &basis, &pending) {
                Some(v) => {
                    profile::record(|p| p.restarts += 1);
                    pending.push(v);
                }
                None => break, // true dimension exhausted
            }
        }
    }

    // Mirror the recorded upper triangle and reduce.
    let k = basis.len();
    let mut proj = crate::Mat::zeros(k, k);
    let mut scale = 0.0f64;
    for i in 0..k {
        for j in i..k {
            proj[(i, j)] = t[(i, j)];
            proj[(j, i)] = t[(i, j)];
            scale = scale.max(t[(i, j)].abs());
        }
    }
    // T is block-tridiagonal up to roundoff (and up to invariant-subspace
    // restarts, which inject dense columns), so measure the *effective*
    // semibandwidth and reduce in O(k²·w) with Givens bulge chasing.
    // Entries below the roundoff threshold are dropped by the band
    // reduction; they perturb eigenvalues by at most ‖E‖_F ≈ k·1e-13·scale,
    // far inside the estimator's tolerance. A restart that genuinely
    // densifies T pushes w up and we fall back to Householder.
    let mut width = 1usize;
    let tol = scale * 1e-13;
    for i in 0..k {
        for j in i + 1..k {
            if proj[(i, j)].abs() > tol {
                width = width.max(j - i);
            }
        }
    }
    let (diag, off) = if width * 4 <= k {
        crate::eigen::band_tridiagonal(&proj, width)
    } else {
        crate::eigen::householder_tridiagonal(&proj)
    };
    tridiagonal_eigenvalues(&diag, &off)
}

/// A fresh seeded direction orthonormalised (twice) against `basis` and
/// `pending`; `None` when the space is exhausted.
fn fresh_direction(
    n: usize,
    next: &mut impl FnMut() -> f64,
    basis: &[Vec<f64>],
    pending: &[Vec<f64>],
) -> Option<Vec<f64>> {
    for _attempt in 0..3 {
        let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
        for _ in 0..2 {
            for q in basis.iter().chain(pending) {
                let proj = dot(&v, q);
                for (vi, qi) in v.iter_mut().zip(q) {
                    *vi -= proj * qi;
                }
            }
        }
        let norm = dot(&v, &v).sqrt();
        if norm >= 1e-10 {
            for vi in &mut v {
                *vi /= norm;
            }
            return Some(v);
        }
    }
    None
}

/// Kernel dimension of a symmetric PSD operator via a full Lanczos
/// run: Ritz values with `|λ| ≤ tol` (exact for `m = n`).
pub fn kernel_dim_lanczos<A: LaplacianOp + ?Sized>(a: &A, tol: f64, seed: u64) -> usize {
    lanczos_ritz_values(a, a.dim(), seed).iter().filter(|l| l.abs() <= tol).count()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalise(v: &mut [f64]) {
    let n = dot(v, v).sqrt().max(1e-300);
    for x in v {
        *x /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymEigen;
    use crate::sparse::CsrMatrix;
    use crate::Mat;

    fn assert_spectra_match(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn tridiagonal_known_spectrum() {
        // Tridiag(-1, 2, -1) of size n has eigenvalues 2−2cos(kπ/(n+1)).
        let n = 8;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let got = tridiagonal_eigenvalues(&diag, &off);
        let expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        assert_spectra_match(&got, &expect, 1e-10);
    }

    #[test]
    fn tridiagonal_diagonal_case() {
        let got = tridiagonal_eigenvalues(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        assert_spectra_match(&got, &[-1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn tridiagonal_single_entry() {
        assert_eq!(tridiagonal_eigenvalues(&[5.5], &[]), vec![5.5]);
    }

    #[test]
    fn full_lanczos_matches_jacobi() {
        let m = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -1.0, -1.0, 0.0],
            vec![0.0, 0.0, 3.0, -1.0, -1.0, 0.0],
            vec![0.0, -1.0, -1.0, 2.0, 1.0, -1.0],
            vec![0.0, -1.0, -1.0, 1.0, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, -1.0, 1.0, 2.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let lanczos = lanczos_ritz_values(&csr, 6, 17);
        let jacobi = SymEigen::eigenvalues(&m);
        assert_spectra_match(&lanczos, &jacobi, 1e-8);
    }

    #[test]
    fn full_lanczos_on_pseudo_random_matrix() {
        let n = 24;
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let raw = Mat::from_fn(n, n, |_, _| next());
        let sym = raw.add(&raw.transpose()).scale(0.5);
        let csr = CsrMatrix::from_dense(&sym, 0.0);
        let lanczos = lanczos_ritz_values(&csr, n, 3);
        let jacobi = SymEigen::eigenvalues(&sym);
        assert_spectra_match(&lanczos, &jacobi, 1e-7);
    }

    #[test]
    fn partial_lanczos_brackets_extremal_eigenvalues() {
        // 60×60 path Laplacian; 20 iterations must capture λ_min ≈ 0 and
        // λ_max ≈ 4 well.
        let n = 60;
        let triplets: Vec<_> = (0..n)
            .flat_map(|i| {
                let d = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
                let mut row = vec![(i, i, d)];
                if i + 1 < n {
                    row.push((i, i + 1, -1.0));
                    row.push((i + 1, i, -1.0));
                }
                row
            })
            .collect();
        let csr = CsrMatrix::from_triplets(n, n, triplets);
        let ritz = lanczos_ritz_values(&csr, 20, 5);
        let min = ritz.first().copied().unwrap();
        let max = ritz.last().copied().unwrap();
        // Extremal Ritz values converge first but not to machine
        // precision in 20 of 60 iterations; brackets are what matters.
        assert!(min.abs() < 0.01, "kernel Ritz value: {min}");
        assert!((max - 3.9973).abs() < 0.01, "top Ritz value: {max}");
    }

    #[test]
    fn kernel_dim_matches_dense_route() {
        // Degenerate kernel (two components → 2 zero eigenvalues) — the
        // hard case for plain Lanczos, handled by the restart logic.
        let m = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        assert_eq!(kernel_dim_lanczos(&csr, 1e-8, 11), SymEigen::kernel_dim(&m, 1e-8));
    }

    #[test]
    fn zero_matrix_full_kernel() {
        let csr = CsrMatrix::from_triplets(5, 5, Vec::<(usize, usize, f64)>::new());
        assert_eq!(kernel_dim_lanczos(&csr, 1e-10, 1), 5);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_triplets(0, 0, Vec::<(usize, usize, f64)>::new());
        assert!(lanczos_ritz_values(&csr, 3, 1).is_empty());
    }

    /// A pseudo-random sparse Laplacian-like PSD matrix: `BᵀB` for a
    /// sparse-ish random `B` (so it has a plausible kernel).
    fn random_psd(n: usize, seed: u64) -> CsrMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = Mat::from_fn(n, n, |_, _| if next() > 0.2 { 0.0 } else { next() });
        let psd = b.transpose().matmul(&b);
        CsrMatrix::from_dense(&psd, 1e-15)
    }

    #[test]
    fn tridiagonal_quadrature_known_cases() {
        // 1×1: the whole measure sits on the single eigenvalue.
        assert_eq!(tridiagonal_quadrature(&[5.5], &[]), vec![(5.5, 1.0)]);
        // Diagonal: e₁ is already an eigenvector, so all weight lands
        // on d[0] and none on the others.
        let quad = tridiagonal_quadrature(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        let on_three: f64 = quad.iter().filter(|&&(node, _)| node == 3.0).map(|&(_, w)| w).sum();
        assert!((on_three - 1.0).abs() < 1e-14, "{quad:?}");
        assert!((quad.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn tridiagonal_quadrature_nodes_match_eigenvalues_and_moments() {
        let diag = vec![2.0, 1.5, 3.0, 0.5, 2.5];
        let off = vec![-1.0, 0.7, -0.3, 0.9];
        let quad = tridiagonal_quadrature(&diag, &off);
        let nodes = tridiagonal_eigenvalues(&diag, &off);
        assert_eq!(quad.len(), nodes.len());
        for (&(node, w), expect) in quad.iter().zip(&nodes) {
            assert_eq!(node.to_bits(), expect.to_bits(), "identical QL node arithmetic");
            assert!(w >= 0.0);
        }
        // Weighted power sums reproduce (T^p)₀₀: p = 0 → 1, p = 1 →
        // d₀, p = 2 → d₀² + e₀², p = 3 → d₀³ + 2d₀e₀² + d₁e₀².
        let moment = |p: i32| quad.iter().map(|&(t, w)| w * t.powi(p)).sum::<f64>();
        assert!((moment(0) - 1.0).abs() < 1e-12);
        assert!((moment(1) - diag[0]).abs() < 1e-12);
        assert!((moment(2) - (diag[0] * diag[0] + off[0] * off[0])).abs() < 1e-12);
        let t3 = diag[0].powi(3) + 2.0 * diag[0] * off[0] * off[0] + diag[1] * off[0] * off[0];
        assert!((moment(3) - t3).abs() < 1e-12);
    }

    #[test]
    fn lanczos_quadrature_is_exact_to_gaussian_degree() {
        // An m-point Gaussian rule integrates vᵀ p(A) v exactly for
        // polynomials of degree ≤ 2m−1. Regenerate the seeded start
        // vector and compare every power moment A^p against the rule.
        let n = 18;
        let m = 5;
        let seed = 21;
        let csr = random_psd(n, 33);
        let quad = lanczos_quadrature(&csr, m, seed);
        assert_eq!(quad.len(), m);
        assert!((quad.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(quad.iter().all(|&(_, w)| w >= -1e-14));
        let mut next = xorshift(seed);
        let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
        normalise(&mut v);
        let mut power = v.clone();
        for p in 0..2 * m as i32 {
            let from_rule: f64 = quad.iter().map(|&(node, w)| w * node.powi(p)).sum();
            let direct = dot(&v, &power);
            assert!(
                (from_rule - direct).abs() < 1e-7 * direct.abs().max(1.0),
                "degree {p}: rule {from_rule} vs direct {direct}"
            );
            let mut nxt = vec![0.0; n];
            csr.matvec_into(&power, &mut nxt);
            power = nxt;
        }
    }

    #[test]
    fn lanczos_quadrature_nodes_are_bit_identical_to_ritz_values() {
        for (n, m, seed) in [(24usize, 24usize, 3u64), (24, 7, 3), (40, 12, 9)] {
            let csr = random_psd(n, seed.wrapping_mul(97));
            let quad = lanczos_quadrature(&csr, m, seed);
            let ritz = lanczos_ritz_values(&csr, m, seed);
            assert_eq!(quad.len(), ritz.len());
            for (&(node, _), r) in quad.iter().zip(&ritz) {
                assert_eq!(node.to_bits(), r.to_bits());
            }
        }
    }

    #[test]
    fn lanczos_quadrature_handles_restarts_and_edges() {
        // Degenerate two-component Laplacian forces the restart path
        // (β = 0 block split): weights must still be a probability
        // vector over the original start's measure.
        let m = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let quad = lanczos_quadrature(&csr, 4, 11);
        assert!((quad.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-10);
        // Empty operator: empty rule.
        let empty = CsrMatrix::from_triplets(0, 0, Vec::<(usize, usize, f64)>::new());
        assert!(lanczos_quadrature(&empty, 3, 1).is_empty());
    }

    #[test]
    fn block_lanczos_full_run_matches_plain_lanczos() {
        for (n, seed) in [(6usize, 17u64), (24, 3), (40, 9)] {
            let csr = random_psd(n, seed);
            let plain = lanczos_ritz_values(&csr, n, 17);
            for block in [2usize, 4, 8] {
                let blocked = block_lanczos_ritz_values(&csr, n, 17, block);
                assert_spectra_match(&blocked, &plain, 1e-7);
            }
        }
    }

    #[test]
    fn block_lanczos_block_one_is_exactly_plain_lanczos() {
        let csr = random_psd(20, 5);
        let plain = lanczos_ritz_values(&csr, 20, 7);
        let blocked = block_lanczos_ritz_values(&csr, 20, 7, 1);
        assert_eq!(
            plain.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            blocked.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "block=1 must take the single-vector path bit-for-bit"
        );
    }

    #[test]
    fn block_lanczos_handles_degenerate_kernel() {
        // Two disconnected edges → 2-dimensional kernel; the residual
        // block goes rank-deficient and must be topped up with fresh
        // directions.
        let m = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let blocked = block_lanczos_ritz_values(&csr, 4, 11, 2);
        let dense = SymEigen::eigenvalues(&m);
        assert_spectra_match(&blocked, &dense, 1e-9);
        assert_eq!(blocked.iter().filter(|l| l.abs() <= 1e-8).count(), 2);
    }

    #[test]
    fn block_lanczos_zero_and_empty_matrices() {
        let zero = CsrMatrix::from_triplets(5, 5, Vec::<(usize, usize, f64)>::new());
        let ritz = block_lanczos_ritz_values(&zero, 5, 1, 4);
        assert_eq!(ritz.len(), 5);
        assert!(ritz.iter().all(|l| l.abs() <= 1e-10));
        let empty = CsrMatrix::from_triplets(0, 0, Vec::<(usize, usize, f64)>::new());
        assert!(block_lanczos_ritz_values(&empty, 3, 1, 4).is_empty());
    }

    #[test]
    fn block_lanczos_oversized_block_is_clamped() {
        let csr = random_psd(10, 77);
        let blocked = block_lanczos_ritz_values(&csr, 10, 13, 64);
        let dense = SymEigen::eigenvalues(&csr.to_dense());
        assert_spectra_match(&blocked, &dense, 1e-8);
    }
}
