//! Matrix rank and nullity.
//!
//! Classical Betti numbers come from rank–nullity on the boundary
//! operators: `β_k = |S_k| − rank ∂_k − rank ∂_{k+1}`. Boundary matrices
//! have entries in {−1, 0, 1}, so alongside the floating-point echelon
//! rank we provide an **exact** fraction-free (Bareiss) elimination over
//! `i128`, and a combinator that prefers the exact path and falls back to
//! floating point only on (astronomically unlikely) overflow.

use crate::matrix::Mat;

/// Default relative tolerance for the floating-point rank.
pub const DEFAULT_RANK_TOL: f64 = 1e-9;

/// Numerical rank by Gaussian elimination with partial pivoting.
///
/// A pivot is accepted while its magnitude exceeds `tol · max(1, ‖A‖_max)`.
pub fn rank_f64(a: &Mat, tol: f64) -> usize {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return 0;
    }
    let scale = a.data().iter().fold(0.0f64, |acc, x| acc.max(x.abs())).max(1.0);
    let threshold = tol * scale;

    let mut w: Vec<Vec<f64>> = (0..m).map(|i| a.row(i).to_vec()).collect();
    let mut rank = 0;
    let mut row = 0;
    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/under `row`.
        let (pivot_row, pivot_val) = match (row..m)
            .map(|r| (r, w[r][col]))
            .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).expect("NaN entry"))
        {
            Some(p) => p,
            None => break,
        };
        if pivot_val.abs() <= threshold {
            continue;
        }
        w.swap(row, pivot_row);
        for r in (row + 1)..m {
            let factor = w[r][col] / pivot_val;
            if factor == 0.0 {
                continue;
            }
            let (pivot_slice, rest) = w.split_at_mut(row + 1);
            let pivot_row_ref = &pivot_slice[row];
            let target = &mut rest[r - row - 1];
            for c in col..n {
                target[c] -= factor * pivot_row_ref[c];
            }
        }
        rank += 1;
        row += 1;
        if row == m {
            break;
        }
    }
    rank
}

/// Nullity (kernel dimension) of `a` over the reals: `cols − rank`.
pub fn nullity_f64(a: &Mat, tol: f64) -> usize {
    a.cols() - rank_f64(a, tol)
}

/// Exact rank of an integer matrix by Bareiss fraction-free elimination.
///
/// Returns `None` if an intermediate value overflows `i128` (in which case
/// callers should fall back to [`rank_f64`]). For boundary matrices with
/// entries in {−1, 0, 1}, intermediates are bounded by Hadamard's
/// inequality and overflow is effectively impossible at the sizes this
/// workspace handles.
pub fn rank_exact(rows: &[Vec<i64>]) -> Option<usize> {
    let m = rows.len();
    let n = rows.first().map_or(0, Vec::len);
    if m == 0 || n == 0 {
        return Some(0);
    }
    debug_assert!(rows.iter().all(|r| r.len() == n), "ragged rows");
    let mut w: Vec<Vec<i128>> =
        rows.iter().map(|r| r.iter().map(|&x| x as i128).collect()).collect();

    let mut prev_pivot: i128 = 1;
    let mut rank = 0;
    let mut row = 0;
    for col in 0..n {
        // Find any nonzero pivot in this column (prefer smallest magnitude
        // to slow entry growth).
        let pivot_row =
            (row..m).filter(|&r| w[r][col] != 0).min_by_key(|&r| w[r][col].unsigned_abs());
        let pivot_row = match pivot_row {
            Some(p) => p,
            None => continue,
        };
        w.swap(row, pivot_row);
        let pivot = w[row][col];
        for r in (row + 1)..m {
            for c in (col + 1)..n {
                // Bareiss update: (pivot·a[r][c] − a[r][col]·a[row][c]) / prev_pivot
                let t1 = pivot.checked_mul(w[r][c])?;
                let t2 = w[r][col].checked_mul(w[row][c])?;
                let num = t1.checked_sub(t2)?;
                debug_assert_eq!(num % prev_pivot, 0, "Bareiss divisibility violated");
                w[r][c] = num / prev_pivot;
            }
            w[r][col] = 0;
        }
        prev_pivot = pivot;
        rank += 1;
        row += 1;
        if row == m {
            break;
        }
    }
    Some(rank)
}

/// Rank of a matrix whose entries are (within `1e-9` of) integers: exact
/// Bareiss if possible, floating-point echelon otherwise.
pub fn rank_integral(a: &Mat) -> usize {
    if a.rows() == 0 || a.cols() == 0 {
        return 0;
    }
    if a.is_integral(1e-9) {
        if let Some(r) = rank_exact(&a.to_integer_rows(1e-9)) {
            return r;
        }
    }
    rank_f64(a, DEFAULT_RANK_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(rank_f64(&Mat::zeros(4, 7), DEFAULT_RANK_TOL), 0);
        assert_eq!(rank_exact(&vec![vec![0i64; 7]; 4]), Some(0));
    }

    #[test]
    fn identity_has_full_rank() {
        assert_eq!(rank_f64(&Mat::identity(9), DEFAULT_RANK_TOL), 9);
    }

    #[test]
    fn duplicated_rows_drop_rank() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0], vec![0.0, 1.0, 1.0]]);
        assert_eq!(rank_f64(&a, DEFAULT_RANK_TOL), 2);
        assert_eq!(rank_integral(&a), 2);
    }

    #[test]
    fn wide_and_tall_matrices() {
        let wide = Mat::from_rows(&[vec![1.0, 0.0, 2.0, 0.0], vec![0.0, 1.0, 0.0, 2.0]]);
        assert_eq!(rank_f64(&wide, DEFAULT_RANK_TOL), 2);
        let tall = wide.transpose();
        assert_eq!(rank_f64(&tall, DEFAULT_RANK_TOL), 2);
        assert_eq!(nullity_f64(&wide, DEFAULT_RANK_TOL), 2);
        assert_eq!(nullity_f64(&tall, DEFAULT_RANK_TOL), 0);
    }

    #[test]
    fn exact_matches_float_on_boundary_like_matrices() {
        // ∂₁ of the paper's worked example (Eq. 14); rank must be 4.
        let rows: Vec<Vec<i64>> = vec![
            vec![1, 1, 0, 0, 0, 0],
            vec![-1, 0, 1, 0, 0, 0],
            vec![0, -1, -1, 1, 1, 0],
            vec![0, 0, 0, -1, 0, 1],
            vec![0, 0, 0, 0, -1, -1],
        ];
        let exact = rank_exact(&rows).unwrap();
        let m = Mat::from_rows(
            &rows
                .iter()
                .map(|r| r.iter().map(|&x| x as f64).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        assert_eq!(exact, 4);
        assert_eq!(rank_f64(&m, DEFAULT_RANK_TOL), 4);
        assert_eq!(rank_integral(&m), 4);
    }

    #[test]
    fn rank_nullity_theorem() {
        let a = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0, 2.0],
            vec![0.0, 1.0, -1.0, 0.0, 0.0],
            vec![1.0, 0.0, -1.0, 0.0, 2.0],
        ]);
        let r = rank_f64(&a, DEFAULT_RANK_TOL);
        assert_eq!(r + nullity_f64(&a, DEFAULT_RANK_TOL), a.cols());
        assert_eq!(r, 2);
    }

    #[test]
    fn near_singular_small_pivot_rejected() {
        let eps = 1e-13;
        let a = Mat::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0 + eps]]);
        // With a 1e-9 relative tolerance the second pivot is noise.
        assert_eq!(rank_f64(&a, DEFAULT_RANK_TOL), 1);
        // With a far tighter tolerance it is kept.
        assert_eq!(rank_f64(&a, 1e-15), 2);
    }

    #[test]
    fn exact_rank_rectangular() {
        let rows = vec![vec![2, 4], vec![1, 2], vec![3, 6]];
        assert_eq!(rank_exact(&rows), Some(1));
        let rows2 = vec![vec![1, 0], vec![0, 1], vec![1, 1]];
        assert_eq!(rank_exact(&rows2), Some(2));
    }

    #[test]
    fn empty_matrix_edge_cases() {
        assert_eq!(rank_f64(&Mat::zeros(0, 0), DEFAULT_RANK_TOL), 0);
        assert_eq!(rank_integral(&Mat::zeros(0, 5)), 0);
        assert_eq!(rank_exact(&[]), Some(0));
    }
}
