//! Dense real matrices with row-major `Vec<f64>` storage.

use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row count above which matrix products are parallelised across rows.
const PAR_ROWS: usize = 64;

/// A dense real matrix, row-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows. Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Mat { rows: r, cols: c, data: rows.concat() }
    }

    /// Builds an `rows × cols` matrix by evaluating `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// A square matrix with `d` on the diagonal.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix sum. Panics on shape mismatch.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Matrix difference. Panics on shape mismatch.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Mat {
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|a| a * s).collect() }
    }

    /// Matrix product `self · rhs`. Rows are rayon-parallel past a size
    /// threshold; the inner loop is a cache-friendly `ikj` ordering.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Mat::zeros(m, n);

        let kernel = |(i, out_row): (usize, &mut [f64])| {
            let a_row = self.row(i);
            for (l, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(l);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if m >= PAR_ROWS && k * n >= 4096 {
            out.data.par_chunks_mut(n).enumerate().for_each(kernel);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(kernel);
        }
        out
    }

    /// `selfᵀ · self` (Gram matrix), exploiting symmetry of the result.
    pub fn gram(&self) -> Mat {
        let n = self.cols;
        let mut g = Mat::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `self · selfᵀ`, exploiting symmetry of the result.
    pub fn gram_t(&self) -> Mat {
        let m = self.rows;
        let mut g = Mat::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                let s: f64 = self.row(i).iter().zip(self.row(j)).map(|(a, b)| a * b).sum();
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Matrix–vector product into a caller-owned buffer; bit-identical
    /// to [`Mat::matvec`] without the allocation.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        assert_eq!(self.rows, out.len(), "output dimension mismatch");
        for (i, y) in out.iter_mut().enumerate() {
            *y = self.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// Trace (sum of diagonal entries). Panics if not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// `true` if symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Embeds `self` into the top-left corner of an `n × n` matrix whose
    /// remaining diagonal is `fill` (the paper's Eq. 7 padding shape).
    pub fn embed_top_left(&self, n: usize, fill: f64) -> Mat {
        assert!(self.is_square(), "padding requires a square matrix");
        assert!(n >= self.rows, "target must not shrink the matrix");
        let mut out = Mat::zeros(n, n);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
        }
        for i in self.rows..n {
            out[(i, i)] = fill;
        }
        out
    }

    /// `true` when every entry is within `tol` of an integer.
    pub fn is_integral(&self, tol: f64) -> bool {
        self.data.iter().all(|a| (a - a.round()).abs() <= tol)
    }

    /// Rounds every entry to `i64`. Panics if any entry is farther than
    /// `tol` from an integer (guards accidental use on non-integral data).
    pub fn to_integer_rows(&self, tol: f64) -> Vec<Vec<i64>> {
        assert!(self.is_integral(tol), "matrix entries are not integral");
        (0..self.rows).map(|i| self.row(i).iter().map(|a| a.round() as i64).collect()).collect()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                write!(f, "{:8.4}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64 - j as f64) * 0.5 + 1.0);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn gram_t_matches_explicit_product() {
        let a = Mat::from_fn(3, 5, |i, j| ((i + 2 * j) % 4) as f64 - 1.0);
        let g = a.gram_t();
        let explicit = a.matmul(&a.transpose());
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let a = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let v = vec![1.0, -1.0, 2.0];
        let got = a.matvec(&v);
        for (i, g) in got.iter().enumerate() {
            let expect: f64 = a.row(i).iter().zip(&v).map(|(x, y)| x * y).sum();
            assert!((g - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn embed_top_left_pads_diagonal() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let p = a.embed_top_left(4, 3.0);
        assert_eq!(p[(0, 0)], 2.0);
        assert_eq!(p[(1, 0)], 1.0);
        assert_eq!(p[(2, 2)], 3.0);
        assert_eq!(p[(3, 3)], 3.0);
        assert_eq!(p[(2, 3)], 0.0);
        assert_eq!(p.trace(), 4.0 + 6.0);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Exceeds PAR_ROWS to exercise the rayon path.
        let n = 80;
        let a = Mat::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Mat::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let fast = a.matmul(&b);
        // Naive reference.
        let mut slow = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..n {
                    s += a[(i, l)] * b[(l, j)];
                }
                slow[(i, j)] = s;
            }
        }
        assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn integral_detection_and_conversion() {
        let a = Mat::from_rows(&[vec![1.0, -1.0], vec![0.0, 2.0]]);
        assert!(a.is_integral(1e-12));
        assert_eq!(a.to_integer_rows(1e-12), vec![vec![1, -1], vec![0, 2]]);
        let b = Mat::from_rows(&[vec![0.5]]);
        assert!(!b.is_integral(1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn trace_and_norm() {
        let a = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(a.trace(), 6.0);
        assert!((a.frobenius_norm() - 14.0_f64.sqrt()).abs() < 1e-12);
    }
}
