//! # qtda-linalg
//!
//! Dense real/complex linear algebra substrate for the `qtda` workspace.
//!
//! The quantum-TDA pipeline of arXiv:2302.09553 needs a small but exacting
//! set of kernels that the paper's Python stack outsourced to NumPy/SciPy:
//!
//! * a **symmetric eigensolver** (combinatorial Laplacians are real
//!   symmetric; QPE backends need their spectra) — [`eigen`],
//! * **matrix rank / nullity** (classical Betti numbers via rank–nullity)
//!   — [`rank`], in both floating-point and exact integer arithmetic,
//! * the **Hermitian matrix exponential** `exp(iH)` (the QPE walk unitary)
//!   — [`expm`],
//! * **Gershgorin eigenvalue bounds** (the paper's Eq. 7 padding scale)
//!   — [`gershgorin`],
//! * plain dense real ([`matrix::Mat`]) and complex ([`cmatrix::CMat`])
//!   matrices with the handful of operations the rest of the workspace
//!   needs (products, Kronecker products, adjoints, block embedding),
//! * the **sparse-first operator layer**: CSR storage ([`sparse`]),
//!   Lanczos tridiagonalisation ([`lanczos`]) and the [`op::LaplacianOp`]
//!   abstraction over `matvec`/dimension/spectral bounds that lets the
//!   pipeline above treat dense and sparse Laplacians interchangeably,
//! * scoped **solver cost profiling** ([`profile`]): matvec / Lanczos
//!   iteration / restart counters collected per work unit — the
//!   "Laplacian applications per estimate" cost the QTDA literature
//!   prices quantum advantage in.
//!
//! Everything is implemented from scratch on `Vec<f64>` storage; larger
//! matrix products switch to [rayon] row-parallel kernels.

#![deny(missing_docs)]
#![deny(deprecated)]
#![forbid(unsafe_code)]

pub mod cmatrix;
pub mod complex;
pub mod eigen;
pub mod expm;
pub mod gershgorin;
pub mod lanczos;
pub mod matrix;
pub mod op;
pub mod profile;
pub mod rank;
pub mod sparse;

pub use cmatrix::CMat;
pub use complex::C64;
pub use eigen::SymEigen;
pub use lanczos::{
    block_lanczos_ritz_values, lanczos_quadrature, lanczos_ritz_values, tridiagonal_quadrature,
    RITZ_BLOCK,
};
pub use matrix::Mat;
pub use op::LaplacianOp;
pub use profile::SolveProfile;
pub use sparse::{CsrMatrix, PAR_ROWS};
