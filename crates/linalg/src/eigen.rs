//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Combinatorial Laplacians are real symmetric and small-to-moderate
//! (≤ a few hundred rows for the paper's workloads), which is squarely the
//! regime where the Jacobi method is attractive: simple, unconditionally
//! stable, and it delivers both eigenvalues and an orthonormal eigenbasis
//! to near machine precision.

use crate::matrix::Mat;

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Mat,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

impl SymEigen {
    /// Decomposes a symmetric matrix. Panics if `a` is not square or not
    /// symmetric within `1e-9`.
    pub fn decompose(a: &Mat) -> SymEigen {
        assert!(a.is_square(), "eigendecomposition requires a square matrix");
        assert!(a.is_symmetric(1e-9), "matrix is not symmetric");
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Mat::identity(n);

        if n <= 1 {
            return SymEigen { values: (0..n).map(|i| m[(i, i)]).collect(), vectors: v };
        }

        // Convergence threshold relative to the matrix scale; an absolute
        // floor keeps the all-zero matrix from spinning.
        let scale = m.frobenius_norm().max(1.0);
        let tol = 1e-14 * scale;

        for _sweep in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    apply_rotation(&mut m, p, q, c, s);
                    accumulate_vectors(&mut v, p, q, c, s);
                }
            }
        }

        let mut values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        // Sort ascending, permuting eigenvector columns along.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN eigenvalue"));
        let vectors = Mat::from_fn(n, n, |i, j| v[(i, order[j])]);
        values.sort_by(|x, y| x.partial_cmp(y).expect("NaN eigenvalue"));
        SymEigen { values, vectors }
    }

    /// Eigenvalues only (same cost as the full decomposition here; kept as
    /// a semantic convenience).
    pub fn eigenvalues(a: &Mat) -> Vec<f64> {
        Self::decompose(a).values
    }

    /// Counts eigenvalues with `|λ| ≤ tol` — the kernel dimension, which
    /// for a combinatorial Laplacian is the Betti number (paper Eq. 6).
    pub fn kernel_dim(a: &Mat, tol: f64) -> usize {
        Self::eigenvalues(a).iter().filter(|l| l.abs() <= tol).count()
    }

    /// Reconstructs `V · diag(λ) · Vᵀ` (used by tests and `expm`).
    pub fn reconstruct(&self) -> Mat {
        let n = self.values.len();
        let scaled = Mat::from_fn(n, n, |i, j| self.vectors[(i, j)] * self.values[j]);
        scaled.matmul(&self.vectors.transpose())
    }
}

/// Reduces a symmetric matrix to tridiagonal form by Householder
/// reflections (EISPACK `tred1`, eigenvalues-only variant): returns
/// `(diag, off)` with `off.len() == n − 1`, similar to the input so the
/// tridiagonal QL solver recovers its exact spectrum. This is the
/// `O(n³)`-with-tiny-constant bridge that lets block Lanczos hand its
/// (dense but numerically block-tridiagonal) projected matrix to
/// `lanczos::tridiagonal_eigenvalues` instead of paying a full Jacobi
/// decomposition.
// Index-form loops mirror the EISPACK reference (rows `i`, `j`, `k` of
// the same working array interleave); iterator rewrites would obscure
// the port without changing the generated code.
#[allow(clippy::needless_range_loop)]
pub fn householder_tridiagonal(m: &Mat) -> (Vec<f64>, Vec<f64>) {
    assert!(m.is_square(), "tridiagonalisation requires a square matrix");
    let n = m.rows();
    assert!(n > 0, "empty matrix");
    let mut a: Vec<Vec<f64>> = (0..n).map(|i| m.row(i).to_vec()).collect();
    let mut e = vec![0.0f64; n];
    for i in (1..n).rev() {
        let l = i - 1;
        if l == 0 {
            e[i] = a[i][0];
            continue;
        }
        let scale: f64 = a[i][..=l].iter().map(|x| x.abs()).sum();
        if scale == 0.0 {
            e[i] = a[i][l];
            continue;
        }
        // Householder vector u lives in the scaled row i (columns 0..=l).
        let mut h = 0.0;
        for k in 0..=l {
            a[i][k] /= scale;
            h += a[i][k] * a[i][k];
        }
        let f = a[i][l];
        let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
        e[i] = scale * g;
        h -= f * g;
        a[i][l] = f - g;
        // p = A·u / h, then the rank-two update A ← A − u·qᵀ − q·uᵀ with
        // q = p − (uᵀp / 2h)·u, applied to the leading (l+1)² block.
        let mut f_acc = 0.0;
        for j in 0..=l {
            let mut g = 0.0;
            for k in 0..=j {
                g += a[j][k] * a[i][k];
            }
            for k in j + 1..=l {
                g += a[k][j] * a[i][k];
            }
            e[j] = g / h;
            f_acc += e[j] * a[i][j];
        }
        let hh = f_acc / (h + h);
        for j in 0..=l {
            let fj = a[i][j];
            let gj = e[j] - hh * fj;
            e[j] = gj;
            for k in 0..=j {
                a[j][k] -= fj * e[k] + gj * a[i][k];
            }
        }
    }
    let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    (diag, e[1..].to_vec())
}

/// Reduces a symmetric *band* matrix (semibandwidth `w`: entries with
/// `|i − j| > w` are treated as zero) to tridiagonal form with Givens
/// rotations and bulge chasing (Schwarz / LAPACK `dsbtrd` scheme).
/// Costs `O(n²·w)` instead of Householder's `O(n³)`, which is the whole
/// point: block Lanczos produces a projected matrix whose significant
/// entries live within semibandwidth `2b − 1`, so handing it here keeps
/// the reduction proportional to the block size rather than cubic.
/// Entries outside the declared band are ignored (dropped), so callers
/// must pick `w` large enough to cover everything above roundoff.
pub fn band_tridiagonal(m: &Mat, w: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(m.is_square(), "tridiagonalisation requires a square matrix");
    let n = m.rows();
    assert!(n > 0, "empty matrix");
    if w >= n {
        return householder_tridiagonal(m);
    }
    if w <= 1 {
        let diag = (0..n).map(|i| m[(i, i)]).collect();
        let off = (0..n - 1).map(|i| m[(i + 1, i)]).collect();
        return (diag, off);
    }
    let mut a = m.clone();
    for j in 0..n.saturating_sub(2) {
        let hi = (j + w).min(n - 1);
        // Annihilate column j's below-subdiagonal band entries bottom-up;
        // each rotation kicks a bulge one semibandwidth down the
        // diagonal, which the inner loop chases off the matrix.
        for i in ((j + 2)..=hi).rev() {
            let mut p = i;
            let mut col = j;
            loop {
                let y = a[(p, col)];
                if y == 0.0 {
                    break;
                }
                let x = a[(p - 1, col)];
                let r = x.hypot(y);
                let (c, s) = (x / r, y / r);
                // The rotated pair's nonzeros live in the band window
                // around rows p−1, p plus the one-off bulge, so the
                // similarity transform only needs to touch that window.
                let lo_k = p.saturating_sub(w + 2);
                let hi_k = (p + w + 2).min(n - 1);
                for k in lo_k..=hi_k {
                    let u = a[(p - 1, k)];
                    let v = a[(p, k)];
                    a[(p - 1, k)] = c * u + s * v;
                    a[(p, k)] = -s * u + c * v;
                }
                for k in lo_k..=hi_k {
                    let u = a[(k, p - 1)];
                    let v = a[(k, p)];
                    a[(k, p - 1)] = c * u + s * v;
                    a[(k, p)] = -s * u + c * v;
                }
                a[(p, col)] = 0.0;
                a[(col, p)] = 0.0;
                let q = p + w;
                if q >= n {
                    break;
                }
                col = p - 1;
                p = q;
            }
        }
    }
    let diag = (0..n).map(|i| a[(i, i)]).collect();
    let off = (0..n - 1).map(|i| a[(i + 1, i)]).collect();
    (diag, off)
}

/// Frobenius norm of the strictly upper triangle.
fn off_diagonal_norm(m: &Mat) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Computes the (cos, sin) of the Jacobi rotation that zeroes `a[p][q]`,
/// using the numerically stable formulation from Golub & Van Loan §8.5.
fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let tau = (aqq - app) / (2.0 * apq);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

/// Applies the two-sided rotation `Jᵀ · m · J` in place on rows/cols `p, q`.
fn apply_rotation(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
}

/// Accumulates the rotation into the eigenvector matrix: `v ← v · J`.
fn accumulate_vectors(v: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Mat::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::decompose(&a);
        assert_eq!(e.values.len(), 3);
        assert_close(e.values[0], -1.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 3.0, 1e-12);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymEigen::decompose(&a);
        assert_close(e.values[0], 1.0, 1e-12);
        assert_close(e.values[1], 3.0, 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Mat::from_rows(&[
            vec![4.0, 1.0, -2.0, 2.0],
            vec![1.0, 2.0, 0.0, 1.0],
            vec![-2.0, 0.0, 3.0, -2.0],
            vec![2.0, 1.0, -2.0, -1.0],
        ]);
        let e = SymEigen::decompose(&a);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymEigen::decompose(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(6)) < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Mat::from_fn(8, 8, |i, j| ((i * j) % 5) as f64 * 0.5 + if i == j { 2.0 } else { 0.0 })
                .add(&Mat::from_fn(8, 8, |i, j| ((j * i) % 5) as f64 * 0.5))
                .scale(0.5);
        let sym = a.add(&a.transpose()).scale(0.5);
        let e = SymEigen::decompose(&sym);
        assert_close(e.values.iter().sum::<f64>(), sym.trace(), 1e-9);
    }

    #[test]
    fn kernel_dim_counts_zero_eigenvalues() {
        // Graph Laplacian of two disconnected edges: kernel dim = number of
        // components = 2.
        let a = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-9), 2);
    }

    #[test]
    fn worked_example_laplacian_has_one_zero_eigenvalue() {
        // Δ₁ from the paper's Appendix A (Eq. 17): β₁ = 1.
        let a = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -1.0, -1.0, 0.0],
            vec![0.0, 0.0, 3.0, -1.0, -1.0, 0.0],
            vec![0.0, -1.0, -1.0, 2.0, 1.0, -1.0],
            vec![0.0, -1.0, -1.0, 1.0, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, -1.0, 1.0, 2.0],
        ]);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-9), 1);
        // Laplacians are PSD.
        let e = SymEigen::decompose(&a);
        assert!(e.values.iter().all(|&l| l > -1e-9));
    }

    #[test]
    fn zero_matrix_has_full_kernel() {
        let a = Mat::zeros(5, 5);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-12), 5);
    }

    #[test]
    fn one_by_one() {
        let a = Mat::from_rows(&[vec![7.5]]);
        let e = SymEigen::decompose(&a);
        assert_eq!(e.values, vec![7.5]);
    }

    #[test]
    fn householder_tridiagonal_preserves_spectrum() {
        use crate::lanczos::tridiagonal_eigenvalues;
        for (n, seed) in [(1usize, 7u64), (2, 11), (5, 13), (24, 17), (64, 19)] {
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let raw = Mat::from_fn(n, n, |_, _| next());
            let a = raw.add(&raw.transpose()).scale(0.5);
            let (diag, off) = householder_tridiagonal(&a);
            assert_eq!(diag.len(), n);
            assert_eq!(off.len(), n - 1);
            let got = tridiagonal_eigenvalues(&diag, &off);
            let expect = SymEigen::eigenvalues(&a);
            for (x, y) in got.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-8, "n = {n}: {got:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn householder_tridiagonal_on_already_tridiagonal_input() {
        // Zero scale rows (nothing left of the subdiagonal) take the
        // early-out path; the spectrum must still come through exactly.
        let a = Mat::from_rows(&[
            vec![2.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 2.0],
        ]);
        let (diag, off) = householder_tridiagonal(&a);
        let got = crate::lanczos::tridiagonal_eigenvalues(&diag, &off);
        let expect = SymEigen::eigenvalues(&a);
        for (x, y) in got.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn band_tridiagonal_matches_householder_on_random_band_matrices() {
        use crate::lanczos::tridiagonal_eigenvalues;
        for (n, w, seed) in
            [(6usize, 2usize, 3u64), (24, 3, 5), (40, 5, 7), (64, 15, 9), (64, 2, 11), (33, 7, 13)]
        {
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let a = {
                let raw = Mat::from_fn(n, n, |i, j| if i.abs_diff(j) <= w { next() } else { 0.0 });
                raw.add(&raw.transpose()).scale(0.5)
            };
            let (diag, off) = band_tridiagonal(&a, w);
            assert_eq!(diag.len(), n);
            assert_eq!(off.len(), n - 1);
            let got = tridiagonal_eigenvalues(&diag, &off);
            let expect = SymEigen::eigenvalues(&a);
            for (x, y) in got.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-8, "n = {n}, w = {w}: {got:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn band_tridiagonal_degenerate_widths() {
        use crate::lanczos::tridiagonal_eigenvalues;
        // w ≥ n delegates to Householder; w ≤ 1 is extraction only.
        let a = Mat::from_rows(&[
            vec![2.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 2.0],
        ]);
        let expect = SymEigen::eigenvalues(&a);
        for w in [0usize, 1, 3, 4, 9] {
            let (diag, off) = band_tridiagonal(&a, w);
            let got = tridiagonal_eigenvalues(&diag, &off);
            for (x, y) in got.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-10, "w = {w}");
            }
        }
    }

    #[test]
    fn moderately_large_random_symmetric() {
        // Deterministic pseudo-random symmetric 64×64; checks residual
        // ‖AV − VΛ‖ instead of exact values.
        let n = 64;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let raw = Mat::from_fn(n, n, |_, _| next());
        let a = raw.add(&raw.transpose()).scale(0.5);
        let e = SymEigen::decompose(&a);
        let av = a.matmul(&e.vectors);
        let vl = Mat::from_fn(n, n, |i, j| e.vectors[(i, j)] * e.values[j]);
        assert!(av.max_abs_diff(&vl) < 1e-8);
    }
}
