//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Combinatorial Laplacians are real symmetric and small-to-moderate
//! (≤ a few hundred rows for the paper's workloads), which is squarely the
//! regime where the Jacobi method is attractive: simple, unconditionally
//! stable, and it delivers both eigenvalues and an orthonormal eigenbasis
//! to near machine precision.

use crate::matrix::Mat;

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Mat,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

impl SymEigen {
    /// Decomposes a symmetric matrix. Panics if `a` is not square or not
    /// symmetric within `1e-9`.
    pub fn decompose(a: &Mat) -> SymEigen {
        assert!(a.is_square(), "eigendecomposition requires a square matrix");
        assert!(a.is_symmetric(1e-9), "matrix is not symmetric");
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Mat::identity(n);

        if n <= 1 {
            return SymEigen { values: (0..n).map(|i| m[(i, i)]).collect(), vectors: v };
        }

        // Convergence threshold relative to the matrix scale; an absolute
        // floor keeps the all-zero matrix from spinning.
        let scale = m.frobenius_norm().max(1.0);
        let tol = 1e-14 * scale;

        for _sweep in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    apply_rotation(&mut m, p, q, c, s);
                    accumulate_vectors(&mut v, p, q, c, s);
                }
            }
        }

        let mut values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        // Sort ascending, permuting eigenvector columns along.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN eigenvalue"));
        let vectors = Mat::from_fn(n, n, |i, j| v[(i, order[j])]);
        values.sort_by(|x, y| x.partial_cmp(y).expect("NaN eigenvalue"));
        SymEigen { values, vectors }
    }

    /// Eigenvalues only (same cost as the full decomposition here; kept as
    /// a semantic convenience).
    pub fn eigenvalues(a: &Mat) -> Vec<f64> {
        Self::decompose(a).values
    }

    /// Counts eigenvalues with `|λ| ≤ tol` — the kernel dimension, which
    /// for a combinatorial Laplacian is the Betti number (paper Eq. 6).
    pub fn kernel_dim(a: &Mat, tol: f64) -> usize {
        Self::eigenvalues(a).iter().filter(|l| l.abs() <= tol).count()
    }

    /// Reconstructs `V · diag(λ) · Vᵀ` (used by tests and `expm`).
    pub fn reconstruct(&self) -> Mat {
        let n = self.values.len();
        let scaled = Mat::from_fn(n, n, |i, j| self.vectors[(i, j)] * self.values[j]);
        scaled.matmul(&self.vectors.transpose())
    }
}

/// Frobenius norm of the strictly upper triangle.
fn off_diagonal_norm(m: &Mat) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Computes the (cos, sin) of the Jacobi rotation that zeroes `a[p][q]`,
/// using the numerically stable formulation from Golub & Van Loan §8.5.
fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let tau = (aqq - app) / (2.0 * apq);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

/// Applies the two-sided rotation `Jᵀ · m · J` in place on rows/cols `p, q`.
fn apply_rotation(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
}

/// Accumulates the rotation into the eigenvector matrix: `v ← v · J`.
fn accumulate_vectors(v: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Mat::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::decompose(&a);
        assert_eq!(e.values.len(), 3);
        assert_close(e.values[0], -1.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 3.0, 1e-12);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymEigen::decompose(&a);
        assert_close(e.values[0], 1.0, 1e-12);
        assert_close(e.values[1], 3.0, 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Mat::from_rows(&[
            vec![4.0, 1.0, -2.0, 2.0],
            vec![1.0, 2.0, 0.0, 1.0],
            vec![-2.0, 0.0, 3.0, -2.0],
            vec![2.0, 1.0, -2.0, -1.0],
        ]);
        let e = SymEigen::decompose(&a);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymEigen::decompose(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(6)) < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Mat::from_fn(8, 8, |i, j| ((i * j) % 5) as f64 * 0.5 + if i == j { 2.0 } else { 0.0 })
                .add(&Mat::from_fn(8, 8, |i, j| ((j * i) % 5) as f64 * 0.5))
                .scale(0.5);
        let sym = a.add(&a.transpose()).scale(0.5);
        let e = SymEigen::decompose(&sym);
        assert_close(e.values.iter().sum::<f64>(), sym.trace(), 1e-9);
    }

    #[test]
    fn kernel_dim_counts_zero_eigenvalues() {
        // Graph Laplacian of two disconnected edges: kernel dim = number of
        // components = 2.
        let a = Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-9), 2);
    }

    #[test]
    fn worked_example_laplacian_has_one_zero_eigenvalue() {
        // Δ₁ from the paper's Appendix A (Eq. 17): β₁ = 1.
        let a = Mat::from_rows(&[
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -1.0, -1.0, 0.0],
            vec![0.0, 0.0, 3.0, -1.0, -1.0, 0.0],
            vec![0.0, -1.0, -1.0, 2.0, 1.0, -1.0],
            vec![0.0, -1.0, -1.0, 1.0, 2.0, 1.0],
            vec![0.0, 0.0, 0.0, -1.0, 1.0, 2.0],
        ]);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-9), 1);
        // Laplacians are PSD.
        let e = SymEigen::decompose(&a);
        assert!(e.values.iter().all(|&l| l > -1e-9));
    }

    #[test]
    fn zero_matrix_has_full_kernel() {
        let a = Mat::zeros(5, 5);
        assert_eq!(SymEigen::kernel_dim(&a, 1e-12), 5);
    }

    #[test]
    fn one_by_one() {
        let a = Mat::from_rows(&[vec![7.5]]);
        let e = SymEigen::decompose(&a);
        assert_eq!(e.values, vec![7.5]);
    }

    #[test]
    fn moderately_large_random_symmetric() {
        // Deterministic pseudo-random symmetric 64×64; checks residual
        // ‖AV − VΛ‖ instead of exact values.
        let n = 64;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let raw = Mat::from_fn(n, n, |_, _| next());
        let a = raw.add(&raw.transpose()).scale(0.5);
        let e = SymEigen::decompose(&a);
        let av = a.matmul(&e.vectors);
        let vl = Mat::from_fn(n, n, |i, j| e.vectors[(i, j)] * e.values[j]);
        assert!(av.max_abs_diff(&vl) < 1e-8);
    }
}
