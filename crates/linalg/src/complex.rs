//! A minimal `f64` complex number.
//!
//! The workspace deliberately avoids external numeric crates; this type
//! carries exactly the operations the simulator and linear algebra need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Complex zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²` (no square root; the hot path in sampling).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64 { re: self.re / d, im: -self.im / d }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// `true` if both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w ≡ z·w⁻¹ is the definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert!((z + C64::ZERO).approx_eq(z, TOL));
        assert!((z * C64::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(C64::ZERO, TOL));
        assert!((z * z.inv()).approx_eq(C64::ONE, TOL));
        assert!((-z + z).approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::I * C64::I).approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = C64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), TOL));
        assert_eq!(z.conj().im, -4.0);
    }

    #[test]
    fn euler_identity() {
        let z = C64::cis(std::f64::consts::PI);
        assert!(z.approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn exp_matches_cis_for_imaginary_argument() {
        let t = 0.7321;
        let via_exp = (C64::I * t).exp();
        assert!(via_exp.approx_eq(C64::cis(t), TOL));
    }

    #[test]
    fn division_roundtrip() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 3.0);
        assert!(((a / b) * b).approx_eq(a, 1e-10));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 1.1);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 1.1).abs() < TOL);
    }

    #[test]
    fn sum_over_iterator() {
        let s: C64 = (0..4).map(|k| C64::cis(k as f64)).sum();
        let expect = C64::cis(0.0) + C64::cis(1.0) + C64::cis(2.0) + C64::cis(3.0);
        assert!(s.approx_eq(expect, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1.000000-2.000000i");
    }
}
