//! The [`LaplacianOp`] abstraction: what the QPE pipeline actually needs
//! from a combinatorial Laplacian.
//!
//! Every stage above the matrix layer — padding (Eq. 7), rescaling
//! (Eqs. 8–9), and the `p(0)` backends — consumes a Laplacian only
//! through `matvec`, its dimension, and a spectral upper bound. Defining
//! that contract as a trait lets the whole pipeline run **sparse-first**:
//! dense [`Mat`] and [`CsrMatrix`] are interchangeable, and iterative
//! algorithms (power iteration, Lanczos) are written once against the
//! trait instead of once per representation.

use crate::matrix::Mat;
use crate::sparse::CsrMatrix;
use std::borrow::Cow;

/// A real symmetric operator standing in for a combinatorial Laplacian.
///
/// Object-safe core (`dim`, `matvec`, `gershgorin_max`, `nnz`,
/// `to_dense`, `dense`) plus sized constructors (`embed_top_left`,
/// `scale_by`) that padding and rescaling use to stay within the same
/// representation.
pub trait LaplacianOp {
    /// Operator dimension (rows of the square matrix).
    fn dim(&self) -> usize;

    /// `A·x`.
    fn matvec(&self, x: &[f64]) -> Vec<f64>;

    /// `A·x` into a caller-owned buffer (`y.len() == dim()`), letting
    /// iterative solvers reuse scratch instead of allocating per
    /// matvec. Implementations must produce bit-identical results to
    /// [`LaplacianOp::matvec`]. The default allocates and copies;
    /// representations with a native kernel override it.
    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }

    /// `A·xⱼ` for several right-hand sides in one logical pass. Each
    /// output must be bit-identical to the corresponding single
    /// [`LaplacianOp::matvec`]. The default loops over singles;
    /// [`CsrMatrix`] overrides it with a kernel that streams its arena
    /// once for all of `xs` (see [`CsrMatrix::matvec_multi`]).
    fn matvec_block(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.matvec(x)).collect()
    }

    /// Gershgorin upper bound on the spectrum (the paper's `λ̃_max`).
    fn gershgorin_max(&self) -> f64;

    /// Number of stored entries (dense: all of them; CSR: nonzeros).
    fn nnz(&self) -> usize;

    /// An owned dense copy.
    fn to_dense(&self) -> Mat;

    /// A dense view: borrowed when the operator already is dense,
    /// owned otherwise. Lets dense-only backends avoid copying the
    /// common dense case.
    fn dense(&self) -> Cow<'_, Mat> {
        Cow::Owned(self.to_dense())
    }

    /// Embeds into the top-left of an `n × n` operator whose remaining
    /// diagonal is `fill` (the Eq. 7 padding shape), staying in the same
    /// representation.
    fn embed_top_left(&self, n: usize, fill: f64) -> Self
    where
        Self: Sized;

    /// The operator scaled by `s`, staying in the same representation.
    fn scale_by(&self, s: f64) -> Self
    where
        Self: Sized;
}

impl LaplacianOp for Mat {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        Mat::matvec(self, x)
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        Mat::matvec_into(self, x, y);
    }

    fn gershgorin_max(&self) -> f64 {
        crate::gershgorin::max_eigenvalue_bound(self)
    }

    fn nnz(&self) -> usize {
        self.rows() * self.cols()
    }

    fn to_dense(&self) -> Mat {
        self.clone()
    }

    fn dense(&self) -> Cow<'_, Mat> {
        Cow::Borrowed(self)
    }

    fn embed_top_left(&self, n: usize, fill: f64) -> Mat {
        Mat::embed_top_left(self, n, fill)
    }

    fn scale_by(&self, s: f64) -> Mat {
        self.scale(s)
    }
}

impl LaplacianOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.n_rows()
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        CsrMatrix::matvec(self, x)
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::matvec_into(self, x, y);
    }

    fn matvec_block(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        CsrMatrix::matvec_multi(self, xs)
    }

    fn gershgorin_max(&self) -> f64 {
        CsrMatrix::gershgorin_max(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn to_dense(&self) -> Mat {
        CsrMatrix::to_dense(self)
    }

    fn embed_top_left(&self, n: usize, fill: f64) -> CsrMatrix {
        CsrMatrix::embed_top_left(self, n, fill)
    }

    fn scale_by(&self, s: f64) -> CsrMatrix {
        CsrMatrix::scale(self, s)
    }
}

/// Outcome of a [`lambda_max_power_checked`] run: the residual-inflated
/// estimate plus whether the iteration actually converged, so callers
/// needing a *sound* bound can fall back (e.g. to Gershgorin) when it
/// did not.
#[derive(Clone, Copy, Debug)]
pub struct PowerBound {
    /// `ρ + ‖Av − ρv‖` — the Rayleigh quotient inflated by its residual.
    pub estimate: f64,
    /// `true` when the final residual is small relative to the Rayleigh
    /// quotient (the iterate has locked onto an eigenvector; for a
    /// random start vector that eigenvector is the top one with
    /// probability 1).
    pub converged: bool,
}

/// Power-iteration estimate of `λ_max` for a **symmetric PSD** operator,
/// inflated by the final Rayleigh residual so the returned value is a
/// (probabilistic) upper bound suitable for the Eq. 7/9 rescale. It only
/// touches the operator through `matvec` — `O(iterations · nnz)` instead
/// of the dense Gershgorin scan, and usually *tighter* than Gershgorin.
/// Deterministic given `seed`.
///
/// The residual `‖Av − ρv‖` only bounds the distance to the *nearest*
/// eigenvalue, so a run that has not converged (too few iterations)
/// can report a value **below** `λ_max`; use
/// [`lambda_max_power_checked`] when that must be detected.
pub fn lambda_max_power<A: LaplacianOp + ?Sized>(a: &A, iterations: usize, seed: u64) -> f64 {
    lambda_max_power_checked(a, iterations, seed).estimate
}

/// Residual tolerance (relative to the Rayleigh quotient) below which a
/// power iteration counts as converged. Deliberately strict: with
/// clustered top eigenvalues the iterate can sit on a *mixture* whose
/// residual is small (≈ the cluster spread) while `ρ + ‖Av − ρv‖` still
/// undershoots `λ_max`; at 1e-6 relative residual any remaining
/// undershoot is far inside the `δ < 2π` headroom of the rescale.
const POWER_CONVERGENCE_RTOL: f64 = 1e-6;

/// [`lambda_max_power`] with an explicit convergence verdict.
pub fn lambda_max_power_checked<A: LaplacianOp + ?Sized>(
    a: &A,
    iterations: usize,
    seed: u64,
) -> PowerBound {
    let n = a.dim();
    if n == 0 {
        return PowerBound { estimate: 0.0, converged: true };
    }
    let mut next = xorshift_stream(seed);
    let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
    normalise(&mut v);
    let mut rayleigh = 0.0;
    let mut residual = f64::INFINITY;
    let mut av = vec![0.0f64; n];
    for _ in 0..iterations.max(1) {
        a.matvec_into(&v, &mut av);
        crate::profile::record(|p| p.matvecs += 1);
        rayleigh = dot(&av, &v);
        // residual ‖Av − ρv‖ bounds |λ_max − ρ| for symmetric A.
        residual = av
            .iter()
            .zip(&v)
            .map(|(x, y)| (x - rayleigh * y) * (x - rayleigh * y))
            .sum::<f64>()
            .sqrt();
        let norm = av.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-14 {
            // Zero operator (PSD ⇒ all eigenvalues 0).
            return PowerBound { estimate: 0.0, converged: true };
        }
        for x in &mut av {
            *x /= norm;
        }
        std::mem::swap(&mut v, &mut av);
    }
    let converged = residual <= POWER_CONVERGENCE_RTOL * rayleigh.abs().max(f64::MIN_POSITIVE);
    PowerBound { estimate: rayleigh + residual, converged }
}

/// Where an adaptive power iteration starts.
#[derive(Clone, Copy, Debug)]
pub enum PowerStart<'a> {
    /// Cold: a seeded xorshift start vector (the classic behaviour).
    Seed(u64),
    /// Warm: resume from a previous iterate — e.g. the converged top
    /// eigenvector of a *prefix* of the same matrix during an ascending
    /// filtration sweep, where the dominant eigenspace moves slowly.
    /// Coordinates past `vector.len()` (the prefix grew) are filled
    /// from the seeded stream so genuinely new directions are never
    /// starved; a (near-)zero warm vector falls back to a cold start.
    Warm {
        /// The previous iterate (length ≤ the operator dimension).
        vector: &'a [f64],
        /// Seed for the trailing fill / degenerate-vector fallback.
        fill_seed: u64,
    },
}

/// Outcome of [`lambda_max_power_adaptive`]: the residual-inflated
/// bound, the convergence verdict, how many matvecs it took, and the
/// final iterate (normalised) — the warm-start handoff for the next,
/// larger prefix of the operator.
#[derive(Clone, Debug)]
pub struct PowerRun {
    /// `ρ + ‖Av − ρv‖` at the final iterate.
    pub estimate: f64,
    /// The final Rayleigh quotient ρ on its own. For a symmetric
    /// operator any Rayleigh quotient is a **lower bound** on λ_max,
    /// which makes even an unconverged run a witness against another
    /// run's claimed upper bound (the stale-warm-start guard).
    pub rayleigh: f64,
    /// Residual under [`POWER_CONVERGENCE_RTOL`] relative to ρ.
    pub converged: bool,
    /// Matvecs actually spent (≤ `max_iterations`; early exit on
    /// convergence is the whole point of warm starting).
    pub iterations: usize,
    /// The final normalised iterate.
    pub vector: Vec<f64>,
}

/// Power iteration with **early exit** and an optional **warm start**:
/// runs until the Rayleigh residual converges or `max_iterations` is
/// spent, whichever comes first, and reports the matvec count. Unlike
/// [`lambda_max_power_checked`] (fixed iteration count, bit-stable
/// across callers) this trades determinism-of-cost for adaptivity —
/// the returned bound carries the same Rayleigh-residual inflation and
/// the same convergence caveat, so callers needing soundness must
/// still guard a non-converged run with Gershgorin.
pub fn lambda_max_power_adaptive<A: LaplacianOp + ?Sized>(
    a: &A,
    max_iterations: usize,
    start: PowerStart<'_>,
) -> PowerRun {
    let n = a.dim();
    if n == 0 {
        return PowerRun {
            estimate: 0.0,
            rayleigh: 0.0,
            converged: true,
            iterations: 0,
            vector: Vec::new(),
        };
    }
    let mut v: Vec<f64> = match start {
        PowerStart::Seed(seed) => {
            let mut next = xorshift_stream(seed);
            (0..n).map(|_| next()).collect()
        }
        PowerStart::Warm { vector, fill_seed } => {
            let mut next = xorshift_stream(fill_seed);
            let head = vector.len().min(n);
            let warm_norm = vector[..head].iter().map(|x| x * x).sum::<f64>().sqrt();
            if warm_norm < 1e-12 {
                // A degenerate warm vector would collapse the iteration.
                (0..n).map(|_| next()).collect()
            } else {
                vector[..head].iter().copied().chain((head..n).map(|_| next())).collect()
            }
        }
    };
    normalise(&mut v);
    let mut rayleigh = 0.0;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut av = vec![0.0f64; n];
    for _ in 0..max_iterations.max(1) {
        a.matvec_into(&v, &mut av);
        crate::profile::record(|p| p.matvecs += 1);
        iterations += 1;
        rayleigh = dot(&av, &v);
        residual = av
            .iter()
            .zip(&v)
            .map(|(x, y)| (x - rayleigh * y) * (x - rayleigh * y))
            .sum::<f64>()
            .sqrt();
        let norm = av.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-14 {
            return PowerRun {
                estimate: 0.0,
                rayleigh: 0.0,
                converged: true,
                iterations,
                vector: v,
            };
        }
        for x in &mut av {
            *x /= norm;
        }
        std::mem::swap(&mut v, &mut av);
        if residual <= POWER_CONVERGENCE_RTOL * rayleigh.abs().max(f64::MIN_POSITIVE) {
            break;
        }
    }
    let converged = residual <= POWER_CONVERGENCE_RTOL * rayleigh.abs().max(f64::MIN_POSITIVE);
    PowerRun { estimate: rayleigh + residual, rayleigh, converged, iterations, vector: v }
}

/// The dependency-free xorshift stream behind every power-iteration
/// start vector (centralised so cold and warm starts draw identical
/// coordinates from identical seeds).
fn xorshift_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalise(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for x in v {
        *x /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymEigen;

    fn laplacian_path4() -> Mat {
        Mat::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ])
    }

    #[test]
    fn dense_and_sparse_agree_through_the_trait() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let ops: [&dyn LaplacianOp; 2] = [&m, &csr];
        let x = vec![1.0, -2.0, 0.5, 3.0];
        for op in ops {
            assert_eq!(op.dim(), 4);
            let y = op.matvec(&x);
            let reference = m.matvec(&x);
            for (a, b) in y.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-14);
            }
            assert!((op.gershgorin_max() - 4.0).abs() < 1e-12);
            assert!(op.to_dense().max_abs_diff(&m) < 1e-15);
        }
    }

    #[test]
    fn dense_view_borrows_for_mat() {
        let m = laplacian_path4();
        assert!(matches!(LaplacianOp::dense(&m), Cow::Borrowed(_)));
        let csr = CsrMatrix::from_dense(&m, 0.0);
        assert!(matches!(LaplacianOp::dense(&csr), Cow::Owned(_)));
    }

    #[test]
    fn embed_and_scale_stay_in_representation() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let padded_dense = LaplacianOp::embed_top_left(&m, 8, 2.5);
        let padded_sparse = LaplacianOp::embed_top_left(&csr, 8, 2.5);
        assert!(padded_sparse.to_dense().max_abs_diff(&padded_dense) < 1e-15);
        let scaled_dense = m.scale_by(0.25);
        let scaled_sparse = csr.scale_by(0.25);
        assert!(scaled_sparse.to_dense().max_abs_diff(&scaled_dense) < 1e-15);
    }

    #[test]
    fn adaptive_power_iteration_converges_and_reports_cost() {
        let m = laplacian_path4();
        let exact = SymEigen::eigenvalues(&m).last().copied().unwrap();
        let cold = lambda_max_power_adaptive(&m, 10_000, PowerStart::Seed(42));
        assert!(cold.converged, "path-4 must converge within the cap");
        assert!(cold.iterations < 10_000, "early exit must fire");
        assert!(cold.estimate >= exact - 1e-9);
        assert!(cold.estimate <= exact * 1.01 + 1e-9);
        assert_eq!(cold.vector.len(), 4);

        // Warm-restarting from the converged vector is (near-)free.
        let warm = lambda_max_power_adaptive(
            &m,
            10_000,
            PowerStart::Warm { vector: &cold.vector, fill_seed: 7 },
        );
        assert!(warm.converged);
        assert!(
            warm.iterations * 4 <= cold.iterations.max(4),
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        // The bound carries its residual inflation (≤ rtol · ρ).
        assert!(warm.estimate >= exact - 1e-9);
        assert!((warm.estimate - exact).abs() < 1e-4);
    }

    #[test]
    fn warm_start_fills_new_coordinates_and_survives_degenerate_vectors() {
        // Grown prefix: warm vector shorter than the operator.
        let m = laplacian_path4();
        let prefix = lambda_max_power_adaptive(
            &Mat::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]),
            1000,
            PowerStart::Seed(3),
        );
        let grown = lambda_max_power_adaptive(
            &m,
            10_000,
            PowerStart::Warm { vector: &prefix.vector, fill_seed: 5 },
        );
        let exact = SymEigen::eigenvalues(&m).last().copied().unwrap();
        assert!(grown.converged);
        assert!(grown.estimate >= exact - 1e-9, "grown warm start must still bound λ_max");
        // All-zero warm vector must fall back to a seeded start, not
        // silently report λ_max = 0 for a nonzero operator.
        let degenerate = lambda_max_power_adaptive(
            &m,
            10_000,
            PowerStart::Warm { vector: &[0.0, 0.0, 0.0, 0.0], fill_seed: 11 },
        );
        assert!(degenerate.converged);
        assert!(degenerate.estimate >= exact - 1e-9);
        // Zero operator still reports zero, converged.
        let zero = CsrMatrix::from_triplets(3, 3, Vec::<(usize, usize, f64)>::new());
        let run = lambda_max_power_adaptive(&zero, 100, PowerStart::Seed(1));
        assert_eq!(run.estimate, 0.0);
        assert!(run.converged);
    }

    #[test]
    fn power_iteration_generic_over_representation() {
        let m = laplacian_path4();
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let exact = SymEigen::eigenvalues(&m).last().copied().unwrap();
        for bound in [lambda_max_power(&m, 200, 42), lambda_max_power(&csr, 200, 42)] {
            assert!(bound >= exact - 1e-9, "bound {bound} < λ_max {exact}");
            assert!(bound <= exact * 1.05 + 1e-9, "bound {bound} far above {exact}");
        }
        // Same seed, same stream, same result across representations.
        assert!((lambda_max_power(&m, 200, 42) - lambda_max_power(&csr, 200, 42)).abs() < 1e-12);
    }
}
