//! # qtda-service
//!
//! The streaming front-end over the batch engine: production QTDA
//! traffic is *requests arriving over time*, not pre-assembled batches.
//! Lloyd et al. (arXiv:1408.3106) frame QTDA as a big-data primitive
//! queried continuously, and the paper's gearbox workload (§5) is a
//! live sliding-window stream — windows show up one sensor tick at a
//! time, and consumers want each window's features as soon as they
//! exist, not when an arbitrary batch boundary happens to flush.
//!
//! [`QtdaService`] closes that gap over
//! [`BatchEngine`](qtda_engine::BatchEngine):
//!
//! * **Submission, not batch assembly.** Many producer threads call
//!   [`QtdaService::submit`] / [`QtdaService::try_submit`] and get a
//!   [`Ticket`] each; a background batcher gathers requests into
//!   micro-batches under a (max-size, max-linger-deadline) policy, so
//!   the engine still amortises construction and dedup without any
//!   caller coordinating a batch.
//! * **Backpressure.** The submission queue is bounded:
//!   [`QtdaService::try_submit`] refuses with
//!   [`SubmitError::Overloaded`] instead of letting latency hide in an
//!   unbounded buffer, and [`QtdaService::submit`] blocks.
//! * **Streaming results.** Each [`Ticket`] yields per-ε
//!   [`SliceResult`](qtda_engine::SliceResult)s *as their estimation
//!   units complete* — the engine's incremental-completion hook fires
//!   mid-batch — and finishes with the assembled
//!   [`JobResult`](qtda_engine::JobResult).
//! * **Size-based dispatch.** A [`DispatchPolicy`] routes every
//!   `(job, ε, dim)` unit to the statevector, dense-eigensolve, or
//!   sparse-Lanczos backend by `|S_k|` (see [`dispatch`]).
//! * **Determinism survives.** Seeds are content-derived, so streamed
//!   results are bit-identical to
//!   [`BatchEngine::run_batch`](qtda_engine::BatchEngine::run_batch)
//!   for the same jobs and batch seed, at any worker count and under
//!   any micro-batch grouping; [`QtdaService::shutdown`] drains
//!   in-flight work. Pinned in `tests/streaming.rs`.
//!
//! Built on std threads + channels in the style of the vendored rayon
//! shim (the environment is offline — no async runtime), which keeps
//! the whole crate dependency-free.
//!
//! ```
//! use qtda_service::{QtdaService, ServiceConfig};
//! use qtda_engine::BettiJob;
//! use qtda_tda::point_cloud::PointCloud;
//!
//! let service = QtdaService::new(ServiceConfig::default());
//! let cloud = PointCloud::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
//! let mut ticket = service.submit(BettiJob::new(cloud, vec![1.0, 1.5])).unwrap();
//! while let Some(slice) = ticket.next_slice() {
//!     // slices arrive as they complete, before the micro-batch finishes
//!     assert!(slice.slice_index < 2);
//! }
//! let result = ticket.wait();
//! assert_eq!(result.slices.len(), 2);
//! service.shutdown();
//! ```

#![deny(missing_docs)]
#![deny(deprecated)]
#![forbid(unsafe_code)]

pub mod dispatch;
pub mod queue;
pub mod service;
pub mod stats;
pub mod ticket;

pub use dispatch::{serving_policy, validating_policy, BackendKind, DispatchPolicy};
// `MetricsRegistry`/`MetricsSnapshot` — and the whole ops surface
// (flight recorder, scrape server, rolling windows, SLO tracking) —
// re-exported so callers can build a [`Telemetry`], serve scrapes, and
// wire burn-rate alerts without depending on `qtda-obs` directly.
pub use qtda_cluster::{ClusterConfig, ClusterEngine};
pub use qtda_engine::{
    AbortReason, CancelToken, Event, EventKind, FlightRecorder, MetricsRegistry, MetricsSnapshot,
    Priority, QosPolicy,
};
pub use qtda_obs::{
    OpsState, RollingWindow, ScrapeServer, Slo, SloObjective, SloStatus, SloTracker, WindowConfig,
    WindowDriver, DEFAULT_LATENCY_BUCKETS,
};
pub use queue::SubmitError;
pub use service::{QtdaService, ServiceConfig, Telemetry};
pub use stats::ServiceStats;
pub use ticket::{StreamedSlice, Ticket, TicketOutcome, TicketTrace};
