//! Serving counters for the streaming front-end.
//!
//! [`ServiceStats`] is a point-in-time snapshot of the service's own
//! monotone counters — submissions, rejections, micro-batch shapes —
//! complementing the engine-level
//! [`EngineStats`](qtda_engine::EngineStats) (cache, dedup, units)
//! available through `QtdaService::engine().stats()`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the service's serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the submission queue.
    pub submitted: u64,
    /// `try_submit` calls refused with `Overloaded` (backpressure).
    pub rejected_overloaded: u64,
    /// Micro-batches handed to the engine.
    pub batches_formed: u64,
    /// Jobs across all micro-batches (≤ `submitted`; the rest are
    /// queued or in flight).
    pub jobs_batched: u64,
    /// Largest micro-batch formed so far.
    pub largest_batch: u64,
    /// Jobs fully served (final result delivered to their ticket).
    pub completed: u64,
}

impl ServiceStats {
    /// Mean jobs per micro-batch formed so far.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.jobs_batched as f64 / self.batches_formed as f64
        }
    }
}

/// The live atomics behind [`ServiceStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub rejected_overloaded: AtomicU64,
    pub batches_formed: AtomicU64,
    pub jobs_batched: AtomicU64,
    pub largest_batch: AtomicU64,
    pub completed: AtomicU64,
}

impl Counters {
    pub fn record_batch(&self, size: u64) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.jobs_batched.fetch_add(size, Ordering::Relaxed);
        self.largest_batch.fetch_max(size, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            jobs_batched: self.jobs_batched.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_tracks_mean_and_max() {
        let c = Counters::default();
        c.record_batch(4);
        c.record_batch(2);
        c.record_batch(6);
        let s = c.snapshot();
        assert_eq!(s.batches_formed, 3);
        assert_eq!(s.jobs_batched, 12);
        assert_eq!(s.largest_batch, 6);
        assert!((s.mean_batch_size() - 4.0).abs() < 1e-12);
        assert_eq!(ServiceStats::default().mean_batch_size(), 0.0);
    }
}
