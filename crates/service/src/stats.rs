//! Serving counters for the streaming front-end.
//!
//! [`ServiceStats`] is a point-in-time snapshot of the service's own
//! monotone counters — submissions (total and per priority class),
//! rejections, micro-batch shapes, completions, and aborts —
//! complementing the engine-level
//! [`EngineStats`](qtda_engine::EngineStats) (cache, dedup, units,
//! per-class served counts) available through
//! `QtdaService::engine().stats()`.

use qtda_engine::{AbortReason, Priority};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the service's serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the submission queue (all classes).
    pub submitted: u64,
    /// Jobs accepted in the `Interactive` class.
    pub submitted_interactive: u64,
    /// Jobs accepted in the `Normal` class.
    pub submitted_normal: u64,
    /// Jobs accepted in the `Bulk` class.
    pub submitted_bulk: u64,
    /// `try_submit` calls refused with `Overloaded` (backpressure).
    pub rejected_overloaded: u64,
    /// Micro-batches handed to the engine.
    pub batches_formed: u64,
    /// Jobs across all micro-batches (≤ `submitted`; the rest are
    /// queued, in flight, or were aborted before batching).
    pub jobs_batched: u64,
    /// Largest micro-batch formed so far.
    pub largest_batch: u64,
    /// Jobs fully served (final result delivered to their ticket).
    pub completed: u64,
    /// Jobs terminated by cancellation — whether while queued or
    /// mid-computation.
    pub cancelled: u64,
    /// Jobs terminated by an expired deadline — whether while queued or
    /// mid-computation.
    pub deadline_expired: u64,
}

impl ServiceStats {
    /// Mean jobs per micro-batch formed so far.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.jobs_batched as f64 / self.batches_formed as f64
        }
    }

    /// Jobs that reached a terminal state (completed or aborted).
    pub fn resolved(&self) -> u64 {
        self.completed + self.cancelled + self.deadline_expired
    }
}

/// The live atomics behind [`ServiceStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub submitted_by_class: [AtomicU64; 3],
    pub rejected_overloaded: AtomicU64,
    pub batches_formed: AtomicU64,
    pub jobs_batched: AtomicU64,
    pub largest_batch: AtomicU64,
    pub completed: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_expired: AtomicU64,
}

impl Counters {
    pub fn record_submit(&self, priority: Priority) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.submitted_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_batch(&self, size: u64) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.jobs_batched.fetch_add(size, Ordering::Relaxed);
        self.largest_batch.fetch_max(size, Ordering::Relaxed);
    }

    pub fn record_abort(&self, reason: AbortReason) {
        match reason {
            AbortReason::Cancelled => self.cancelled.fetch_add(1, Ordering::Relaxed),
            AbortReason::DeadlineExceeded => self.deadline_expired.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            submitted_interactive: self.submitted_by_class[0].load(Ordering::Relaxed),
            submitted_normal: self.submitted_by_class[1].load(Ordering::Relaxed),
            submitted_bulk: self.submitted_by_class[2].load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            jobs_batched: self.jobs_batched.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_tracks_mean_and_max() {
        let c = Counters::default();
        c.record_batch(4);
        c.record_batch(2);
        c.record_batch(6);
        let s = c.snapshot();
        assert_eq!(s.batches_formed, 3);
        assert_eq!(s.jobs_batched, 12);
        assert_eq!(s.largest_batch, 6);
        assert!((s.mean_batch_size() - 4.0).abs() < 1e-12);
        assert_eq!(ServiceStats::default().mean_batch_size(), 0.0);
    }

    #[test]
    fn submissions_and_aborts_count_per_class_and_reason() {
        let c = Counters::default();
        c.record_submit(Priority::Interactive);
        c.record_submit(Priority::Interactive);
        c.record_submit(Priority::Normal);
        c.record_submit(Priority::Bulk);
        c.record_abort(AbortReason::Cancelled);
        c.record_abort(AbortReason::DeadlineExceeded);
        c.record_abort(AbortReason::DeadlineExceeded);
        c.completed.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.submitted, 4);
        assert_eq!((s.submitted_interactive, s.submitted_normal, s.submitted_bulk), (2, 1, 1));
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.deadline_expired, 2);
        assert_eq!(s.resolved(), 4);
    }
}
