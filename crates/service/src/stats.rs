//! Serving counters for the streaming front-end.
//!
//! [`ServiceStats`] is a point-in-time snapshot of the service's own
//! monotone counters — submissions (total and per priority class),
//! rejections, micro-batch shapes, completions, and aborts —
//! complementing the engine-level
//! [`EngineStats`](qtda_engine::EngineStats) (cache, dedup, units,
//! per-class served counts) available through
//! `QtdaService::engine().stats()`.
//!
//! The storage behind both is the service's
//! [`MetricsRegistry`](qtda_obs::MetricsRegistry): [`Counters`] is a
//! bundle of `qtda_service_*` metric handles, so the same numbers that
//! feed `ServiceStats` appear in the Prometheus/JSON exposition —
//! alongside the per-class request latency histogram
//! (`qtda_service_request_seconds`) and the queue-wait histogram
//! (`qtda_service_queue_wait_seconds`) that have no `ServiceStats`
//! field at all.

use qtda_engine::{AbortReason, Priority};
use qtda_obs::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use std::time::Duration;

/// A snapshot of the service's serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the submission queue (all classes).
    pub submitted: u64,
    /// Jobs accepted in the `Interactive` class.
    pub submitted_interactive: u64,
    /// Jobs accepted in the `Normal` class.
    pub submitted_normal: u64,
    /// Jobs accepted in the `Bulk` class.
    pub submitted_bulk: u64,
    /// `try_submit` calls refused with `Overloaded` (backpressure).
    pub rejected_overloaded: u64,
    /// Micro-batches handed to the engine.
    pub batches_formed: u64,
    /// Jobs across all micro-batches (≤ `submitted`; the rest are
    /// queued, in flight, or were aborted before batching).
    pub jobs_batched: u64,
    /// Largest micro-batch formed so far.
    pub largest_batch: u64,
    /// Jobs fully served (final result delivered to their ticket).
    pub completed: u64,
    /// Jobs terminated by cancellation — whether while queued or
    /// mid-computation.
    pub cancelled: u64,
    /// Jobs terminated by an expired deadline — whether while queued or
    /// mid-computation.
    pub deadline_expired: u64,
}

impl ServiceStats {
    /// Mean jobs per micro-batch formed so far.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.jobs_batched as f64 / self.batches_formed as f64
        }
    }

    /// Jobs that reached a terminal state (completed or aborted).
    pub fn resolved(&self) -> u64 {
        self.completed + self.cancelled + self.deadline_expired
    }
}

/// The service's handles into its metrics registry — the storage
/// behind [`ServiceStats`]. Every handle is one atomic cell; no lock
/// is taken after registration.
#[derive(Debug)]
pub(crate) struct Counters {
    submitted_by_class: [Counter; 3],
    pub rejected_overloaded: Counter,
    batches_formed: Counter,
    jobs_batched: Counter,
    largest_batch: Gauge,
    pub completed: Counter,
    cancelled: Counter,
    deadline_expired: Counter,
    /// End-to-end latency (submission → terminal event) per class.
    request_seconds: [Histogram; 3],
    /// Time from submission to being popped into a micro-batch.
    queue_wait_seconds: Histogram,
}

impl Counters {
    pub fn register(registry: &MetricsRegistry) -> Self {
        let class_counter = |class: &str| {
            registry.counter_with("qtda_service_submitted_total", &[("class", class)])
        };
        let class_histogram = |class: &str| {
            registry.histogram_with(
                "qtda_service_request_seconds",
                &[("class", class)],
                &DEFAULT_LATENCY_BUCKETS,
            )
        };
        Counters {
            submitted_by_class: [
                class_counter("interactive"),
                class_counter("normal"),
                class_counter("bulk"),
            ],
            rejected_overloaded: registry.counter("qtda_service_rejected_overloaded_total"),
            batches_formed: registry.counter("qtda_service_batches_formed_total"),
            jobs_batched: registry.counter("qtda_service_jobs_batched_total"),
            largest_batch: registry.gauge("qtda_service_largest_batch"),
            completed: registry.counter("qtda_service_completed_total"),
            cancelled: registry.counter("qtda_service_cancelled_total"),
            deadline_expired: registry.counter("qtda_service_deadline_expired_total"),
            request_seconds: [
                class_histogram("interactive"),
                class_histogram("normal"),
                class_histogram("bulk"),
            ],
            queue_wait_seconds: registry
                .histogram("qtda_service_queue_wait_seconds", &DEFAULT_LATENCY_BUCKETS),
        }
    }

    pub fn record_submit(&self, priority: Priority) {
        self.submitted_by_class[priority.index()].inc();
    }

    pub fn record_batch(&self, size: u64) {
        self.batches_formed.inc();
        self.jobs_batched.add(size);
        self.largest_batch.set_max(size);
    }

    pub fn record_abort(&self, reason: AbortReason) {
        match reason {
            AbortReason::Cancelled => self.cancelled.inc(),
            AbortReason::DeadlineExceeded => self.deadline_expired.inc(),
        };
    }

    /// One observation in the per-class end-to-end latency histogram.
    pub fn record_request_latency(&self, priority: Priority, latency: Duration) {
        self.request_seconds[priority.index()].observe_duration(latency);
    }

    /// One observation in the submission-to-batch queue-wait histogram.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait_seconds.observe_duration(wait);
    }

    pub fn snapshot(&self) -> ServiceStats {
        let by_class: Vec<u64> = self.submitted_by_class.iter().map(Counter::get).collect();
        ServiceStats {
            submitted: by_class.iter().sum(),
            submitted_interactive: by_class[0],
            submitted_normal: by_class[1],
            submitted_bulk: by_class[2],
            rejected_overloaded: self.rejected_overloaded.get(),
            batches_formed: self.batches_formed.get(),
            jobs_batched: self.jobs_batched.get(),
            largest_batch: self.largest_batch.get(),
            completed: self.completed.get(),
            cancelled: self.cancelled.get(),
            deadline_expired: self.deadline_expired.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_tracks_mean_and_max() {
        let registry = MetricsRegistry::new();
        let c = Counters::register(&registry);
        c.record_batch(4);
        c.record_batch(2);
        c.record_batch(6);
        let s = c.snapshot();
        assert_eq!(s.batches_formed, 3);
        assert_eq!(s.jobs_batched, 12);
        assert_eq!(s.largest_batch, 6);
        assert!((s.mean_batch_size() - 4.0).abs() < 1e-12);
        assert_eq!(ServiceStats::default().mean_batch_size(), 0.0);
    }

    #[test]
    fn submissions_and_aborts_count_per_class_and_reason() {
        let registry = MetricsRegistry::new();
        let c = Counters::register(&registry);
        c.record_submit(Priority::Interactive);
        c.record_submit(Priority::Interactive);
        c.record_submit(Priority::Normal);
        c.record_submit(Priority::Bulk);
        c.record_abort(AbortReason::Cancelled);
        c.record_abort(AbortReason::DeadlineExceeded);
        c.record_abort(AbortReason::DeadlineExceeded);
        c.completed.inc();
        let s = c.snapshot();
        assert_eq!(s.submitted, 4);
        assert_eq!((s.submitted_interactive, s.submitted_normal, s.submitted_bulk), (2, 1, 1));
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.deadline_expired, 2);
        assert_eq!(s.resolved(), 4);
    }

    /// The same numbers ServiceStats reports must appear in the
    /// registry's exposition under the `qtda_service_*` families.
    #[test]
    fn counters_publish_into_the_registry() {
        let registry = MetricsRegistry::new();
        let c = Counters::register(&registry);
        c.record_submit(Priority::Normal);
        c.record_submit(Priority::Bulk);
        c.record_batch(2);
        c.record_request_latency(Priority::Normal, Duration::from_millis(3));
        c.record_queue_wait(Duration::from_micros(200));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_family("qtda_service_submitted_total"), 2);
        assert_eq!(snap.counter("qtda_service_batches_formed_total"), 1);
        let exposition = snap.to_prometheus();
        assert!(exposition.contains("qtda_service_submitted_total{class=\"bulk\"} 1"));
        assert!(
            exposition
                .contains("qtda_service_request_seconds_bucket{class=\"normal\",le=\"0.005\"} 1"),
            "per-class latency histogram sample missing:\n{exposition}"
        );
        assert!(exposition.contains("qtda_service_queue_wait_seconds_count 1"));
    }
}
