//! The long-lived streaming service: submit from many threads, get
//! tickets, stream slices.
//!
//! One background **batcher** thread owns the serving loop:
//!
//! 1. Block for the first queued request.
//! 2. **Linger**: keep gathering requests until the micro-batch reaches
//!    [`ServiceConfig::max_batch_size`] or the first request has waited
//!    [`ServiceConfig::max_linger`] — the classic (size, deadline)
//!    micro-batching policy. Shutdown cuts a linger short.
//! 3. Hand the micro-batch to the engine's streaming entry point; every
//!    completed `(job, ε)` slice is forwarded to its ticket the moment
//!    the engine announces it, and the assembled results follow.
//!
//! Batching amortises exactly what [`BatchEngine`] amortises (in-batch
//! dedup, parallel `(job, ε, dim)` scheduling), and because every seed
//! is content-derived, *how* requests get grouped into micro-batches is
//! unobservable in the results — a job's answer is bit-identical
//! whether it lingered into a 16-job batch or ran alone. The streaming
//! determinism test pins this across 1/2/8 workers.

use crate::queue::{BoundedQueue, Request, SubmitError};
use crate::stats::{Counters, ServiceStats};
use crate::ticket::{StreamedSlice, Ticket, TicketEvent};
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, SliceEvent};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Streaming front-end parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The owned engine's configuration (workers, batch seed, cache,
    /// dispatch policy). Worker count shapes only throughput, never
    /// results.
    pub engine: EngineConfig,
    /// Most jobs a micro-batch may gather before it must run.
    pub max_batch_size: usize,
    /// Longest the *first* request of a micro-batch may wait for
    /// company before the batch runs regardless of size.
    pub max_linger: Duration,
    /// Bounded submission-queue capacity; beyond it `try_submit`
    /// returns [`SubmitError::Overloaded`] and `submit` blocks.
    pub queue_capacity: usize,
    /// Shrink the linger deadline toward zero as the backlog (gathered
    /// batch + queued submissions) approaches the batch size: lingering
    /// exists to gather company for *sparse* traffic, so when the
    /// batcher is already behind, waiting out the full deadline only
    /// adds latency while the engine idles. At a backlog of `b` the
    /// effective linger is `max_linger · (1 − b/max_batch_size)` —
    /// zero once the batch can fill. Never affects results (micro-batch
    /// grouping is unobservable; seeds are content-derived), only
    /// latency.
    pub adaptive_linger: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_batch_size: 16,
            max_linger: Duration::from_millis(2),
            queue_capacity: 256,
            adaptive_linger: true,
        }
    }
}

/// The streaming Betti-serving service: a [`BatchEngine`] behind a
/// bounded queue and a deadline micro-batcher, returning a [`Ticket`]
/// per submission.
pub struct QtdaService {
    engine: Arc<BatchEngine>,
    queue: Arc<BoundedQueue>,
    counters: Arc<Counters>,
    batcher: Option<JoinHandle<()>>,
}

impl QtdaService {
    /// Starts a service (and its batcher thread) with the given
    /// configuration.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.max_batch_size >= 1, "micro-batches need at least one job");
        let engine = Arc::new(BatchEngine::new(config.engine));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let counters = Arc::new(Counters::default());
        let batcher = {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("qtda-service-batcher".into())
                .spawn(move || batcher_loop(&engine, &queue, &counters, config))
                .expect("spawning the batcher thread")
        };
        QtdaService { engine, queue, counters, batcher: Some(batcher) }
    }

    /// A service with [`ServiceConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Submits a job, blocking while the queue is full (backpressure by
    /// waiting). Fails only during shutdown.
    pub fn submit(&self, job: BettiJob) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(job);
        self.queue.push_blocking(request)?;
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Submits without blocking: [`SubmitError::Overloaded`] hands the
    /// job straight back when the bounded queue is full — the caller
    /// decides whether to retry, shed, or block via [`Self::submit`].
    pub fn try_submit(&self, job: BettiJob) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(job);
        match self.queue.try_push(request) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(err) => {
                if matches!(err, SubmitError::Overloaded(_)) {
                    self.counters.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                }
                Err(err)
            }
        }
    }

    fn make_request(&self, job: BettiJob) -> (Request, Ticket) {
        let (tx, rx) = channel();
        let request = Request { job, tx, accepted_at: Instant::now() };
        (request, Ticket { rx, result: None })
    }

    /// The engine behind the service (for its cache/dedup/unit
    /// counters; the engine's cache persists across micro-batches).
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }

    /// A snapshot of the service-level counters.
    pub fn stats(&self) -> ServiceStats {
        self.counters.snapshot()
    }

    /// Jobs accepted but not yet picked into a micro-batch.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Stops accepting work, **drains** everything already accepted
    /// (every outstanding ticket still completes), and joins the
    /// batcher thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        if let Some(handle) = self.batcher.take() {
            if handle.join().is_err() {
                // The batcher only panics if the engine did (a worker
                // panic propagated through the scoped pool). Outstanding
                // tickets observe a closed channel; surfacing the panic
                // here would double-report it during unwinding.
                eprintln!("qtda-service: batcher thread panicked; in-flight tickets abandoned");
            }
        }
    }
}

impl Drop for QtdaService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Closes the queue when the batcher exits — crucially also on
/// *unwind*: if an engine worker panic kills the batcher, producers
/// parked in `push_blocking` (and all future submitters) must observe
/// `ShuttingDown` instead of waiting on a queue nobody will ever pop
/// again.
struct CloseOnExit<'a>(&'a BoundedQueue);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The batcher thread: gather → serve → stream, until closed and
/// drained.
fn batcher_loop(
    engine: &BatchEngine,
    queue: &BoundedQueue,
    counters: &Counters,
    config: ServiceConfig,
) {
    let _close_on_exit = CloseOnExit(queue);
    while let Some(first) = queue.pop_blocking() {
        let accepted_at = first.accepted_at;
        let mut batch = vec![first];
        while batch.len() < config.max_batch_size {
            // Re-derive the deadline as the batch fills: the backlog
            // (batch + queue) only grows, so the adaptive linger is
            // monotone non-increasing and a deep backlog dispatches
            // without waiting out the full deadline.
            let linger = if config.adaptive_linger {
                effective_linger(
                    config.max_linger,
                    batch.len() + queue.len(),
                    config.max_batch_size,
                )
            } else {
                config.max_linger
            };
            match queue.pop_until(accepted_at + linger) {
                Some(request) => batch.push(request),
                None => break,
            }
        }
        counters.record_batch(batch.len() as u64);

        let jobs: Vec<BettiJob> = batch.iter().map(|r| r.job.clone()).collect();
        let senders: Vec<Sender<TicketEvent>> = batch.into_iter().map(|r| r.tx).collect();
        // Stream every slice to its ticket as the engine announces it.
        // A send only fails when the consumer dropped the ticket —
        // results are simply discarded then, like any lost interest.
        let results = engine.run_batch_streaming(&jobs, &|event: SliceEvent| {
            let slice = StreamedSlice { slice_index: event.slice_index, result: event.result };
            let _ = senders[event.job_index].send(TicketEvent::Slice(slice));
        });
        for (sender, result) in senders.iter().zip(results) {
            // Count before sending: a consumer that observes `Done` must
            // never read a `completed` counter that excludes its job.
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let _ = sender.send(TicketEvent::Done(result));
        }
    }
}

/// The adaptive linger policy: full deadline for a lone request, shrunk
/// proportionally as the backlog approaches the batch size, zero once
/// the batch could fill without waiting.
fn effective_linger(max_linger: Duration, backlog: usize, max_batch_size: usize) -> Duration {
    if backlog >= max_batch_size {
        return Duration::ZERO;
    }
    max_linger.mul_f64(1.0 - backlog as f64 / max_batch_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_linger_shrinks_toward_zero_with_backlog() {
        let max = Duration::from_millis(800);
        assert_eq!(effective_linger(max, 16, 16), Duration::ZERO, "full backlog waits nothing");
        assert_eq!(effective_linger(max, 40, 16), Duration::ZERO, "overfull backlog too");
        assert_eq!(
            effective_linger(max, 8, 16),
            Duration::from_millis(400),
            "half backlog, half wait"
        );
        let lone = effective_linger(max, 1, 16);
        assert_eq!(lone, Duration::from_millis(750), "a lone request lingers almost fully");
        // Monotone non-increasing in backlog.
        let mut last = Duration::MAX;
        for backlog in 1..=17 {
            let l = effective_linger(max, backlog, 16);
            assert!(l <= last, "backlog {backlog}");
            last = l;
        }
    }
}
