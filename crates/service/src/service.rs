//! The long-lived streaming service: submit from many threads, get
//! tickets, stream slices, cancel what you stop caring about.
//!
//! One background **batcher** thread owns the serving loop:
//!
//! 1. Block for the first queued request (the submission queue serves
//!    priority classes with a bounded starvation bypass — see
//!    [`crate::queue`]). A request cancelled while queued is aborted
//!    right here — its ticket gets the terminal `Aborted` event and it
//!    never occupies a micro-batch slot. A deadline-expired request
//!    still enters its batch: the engine skips its units at the first
//!    boundary check, but a ready cache hit is delivered for free
//!    (best-effort deadlines never discard ready answers).
//! 2. **Linger**: keep gathering requests until the micro-batch reaches
//!    [`ServiceConfig::max_batch_size`] or the first request has waited
//!    out the linger deadline — the classic (size, deadline)
//!    micro-batching policy, made **priority-aware**: the moment the
//!    batch holds (or the queue offers) an [`Priority::Interactive`]
//!    request, the linger collapses to zero and the batch closes early.
//!    Lingering exists to gather company for throughput; an interactive
//!    request is paying latency for it. Shutdown also cuts a linger
//!    short.
//! 3. Hand the micro-batch to the engine's streaming QoS entry point;
//!    every completed `(job, ε)` slice is forwarded to its ticket the
//!    moment the engine announces it, aborts forward as terminal
//!    `Aborted` events, and the assembled outcomes follow.
//!
//! Batching amortises exactly what [`BatchEngine`] amortises (in-batch
//! dedup, parallel `(job, ε, dim)` scheduling), and because every seed
//! is content-derived, *how* requests get grouped into micro-batches —
//! and in which priority order their units run — is unobservable in
//! completed results: a job's answer is bit-identical whether it
//! lingered into a 16-job batch or ran alone, at any worker count. The
//! QoS test suite pins this across 1/2/8 workers.

use crate::queue::{Request, SubmissionQueue, SubmitError};
use crate::stats::{Counters, ServiceStats};
use crate::ticket::{StreamedSlice, Ticket, TicketEvent};
use qtda_cluster::{ClusterConfig, ClusterEngine};
use qtda_engine::{
    BatchEngine, BettiJob, EngineConfig, EventKind, FlightRecorder, JobOutcome, JobRequest,
    MetricsRegistry, Priority, QosPolicy, SliceEvent, Tracer,
};
use qtda_obs::{OpsState, ScrapeServer};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records a completed stage on a per-ticket trace. Compiled out
/// entirely without the `obs` feature; results are bit-identical either
/// way (pinned in `tests/obs.rs`) — telemetry observes wall time, never
/// seeds or scheduling.
#[cfg(feature = "obs")]
fn record_stage(trace: &Tracer, name: &str, start: Instant, end: Instant) {
    trace.record_span(name, start, end);
}

#[cfg(not(feature = "obs"))]
fn record_stage(_trace: &Tracer, _name: &str, _start: Instant, _end: Instant) {}

/// Stamps one flight-recorder event for a request (ticket id and job
/// fingerprint are taken from the request itself). Both the detail
/// closure and the fingerprint hash run only against a live recorder;
/// with the `obs` feature off the whole call compiles away.
#[cfg(feature = "obs")]
fn record_request_event(
    recorder: &FlightRecorder,
    kind: EventKind,
    request: &Request,
    detail: impl FnOnce() -> String,
) {
    if recorder.is_enabled() {
        recorder.record(kind, request.ticket, request.job.fingerprint(), detail());
    }
}

#[cfg(not(feature = "obs"))]
fn record_request_event(
    _recorder: &FlightRecorder,
    _kind: EventKind,
    _request: &Request,
    _detail: impl FnOnce() -> String,
) {
}

/// Pre-computes the `(ticket, fingerprint, detail)` of a `Submit` event
/// while the request is still borrowable — the stamp itself happens
/// only after the queue push succeeds. `None` whenever the recorder is
/// disabled (or the `obs` feature is off), so the fingerprint hash is
/// never paid for an unobserved submission.
#[cfg(feature = "obs")]
fn prepared_submit_event(
    recorder: &FlightRecorder,
    request: &Request,
) -> Option<(u64, u64, String)> {
    if recorder.is_enabled() {
        let detail = format!("class={}", class_label(request.qos.priority));
        Some((request.ticket, request.job.fingerprint(), detail))
    } else {
        None
    }
}

#[cfg(not(feature = "obs"))]
fn prepared_submit_event(
    _recorder: &FlightRecorder,
    _request: &Request,
) -> Option<(u64, u64, String)> {
    None
}

/// Stamps `BatchFormed` for every member of a freshly closed
/// micro-batch (detail carries the batch size).
#[cfg(feature = "obs")]
fn record_batch_formed(recorder: &FlightRecorder, batch: &[(Request, Instant)]) {
    if recorder.is_enabled() {
        let size = batch.len();
        for (request, _) in batch {
            recorder.record(
                EventKind::BatchFormed,
                request.ticket,
                request.job.fingerprint(),
                format!("size={size}"),
            );
        }
    }
}

#[cfg(not(feature = "obs"))]
fn record_batch_formed(_recorder: &FlightRecorder, _batch: &[(Request, Instant)]) {}

/// The lowercase class label used in event details and metric labels.
#[cfg(feature = "obs")]
fn class_label(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Normal => "normal",
        Priority::Bulk => "bulk",
    }
}

/// Streaming front-end parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The owned engine's configuration (workers, batch seed, cache,
    /// dispatch policy). Worker count shapes only throughput, never
    /// results.
    pub engine: EngineConfig,
    /// Most jobs a micro-batch may gather before it must run.
    pub max_batch_size: usize,
    /// Longest the *first* request of a micro-batch may wait for
    /// company before the batch runs regardless of size.
    pub max_linger: Duration,
    /// Bounded submission-queue capacity (shared across priority
    /// classes); beyond it `try_submit` returns
    /// [`SubmitError::Overloaded`] and `submit` blocks.
    pub queue_capacity: usize,
    /// Shrink the linger deadline toward zero as the backlog (gathered
    /// batch + queued submissions) approaches the batch size: lingering
    /// exists to gather company for *sparse* traffic, so when the
    /// batcher is already behind, waiting out the full deadline only
    /// adds latency while the engine idles. At a backlog of `b` the
    /// effective linger is `max_linger · (1 − b/max_batch_size)` —
    /// zero once the batch can fill. Never affects results (micro-batch
    /// grouping is unobservable; seeds are content-derived), only
    /// latency.
    pub adaptive_linger: bool,
    /// Starvation guard for the priority queue: after this many
    /// consecutive pops that bypassed a waiting lower class, the next
    /// pop serves the **oldest** passed-over request instead, so Bulk
    /// (and Normal) work keeps flowing under sustained higher-class
    /// load. Must be ≥ 1.
    pub priority_bypass: usize,
    /// Engine shards behind the batcher. `1` (the default) keeps the
    /// classic single [`BatchEngine`] backend — identical behaviour,
    /// metrics, and journal to every prior release. `> 1` puts a
    /// [`ClusterEngine`] behind the micro-batcher: micro-batches are
    /// routed across the shards by content fingerprint (consistent
    /// hashing, work stealing on, see `qtda_cluster`), every shard's
    /// `qtda_engine_*` metrics publish into the one registry under its
    /// own `shard=` label, and `/ready` reports 503 if any shard dies.
    /// Results are bit-identical at any shard count.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_batch_size: 16,
            max_linger: Duration::from_millis(2),
            queue_capacity: 256,
            adaptive_linger: true,
            priority_bypass: 4,
            shards: 1,
        }
    }
}

/// How a service publishes telemetry: where its metrics land, and
/// whether tickets carry per-stage traces.
///
/// Deliberately separate from [`ServiceConfig`] (which stays `Copy` and
/// describes *serving policy*): telemetry is about observation, and the
/// registry is a shared handle. Telemetry never changes results — the
/// determinism suites run identically with it on, off, or disabled.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// The registry every `qtda_service_*` metric — and, via the owned
    /// engine, every `qtda_engine_*` metric — registers into. Share one
    /// registry across services to aggregate their exposition; pass
    /// `Arc::new(MetricsRegistry::disabled())` to turn every metric
    /// write into a no-op.
    pub registry: Arc<MetricsRegistry>,
    /// When `true`, every ticket carries a live tracer and
    /// [`Ticket::trace`] reports per-stage wall times (`queue_wait`,
    /// `linger`, `delivery` from the service; `cache_probe`,
    /// `arena_build`, `solve` from the engine — spans require the `obs`
    /// feature, on by default). Off by default: tracing allocates per
    /// request.
    pub trace_tickets: bool,
    /// A flight recorder for the structured event journal (`Submit`,
    /// `BatchFormed`, `UnitDone`, `CacheHit`, `Cancel`,
    /// `DeadlineExpired`, `Abort`). `None` (the default) records
    /// nothing at zero cost; pass `Some(Arc::new(FlightRecorder::new(
    /// capacity)))` — or use [`Telemetry::with_flight_recorder`] — and
    /// both the service and its engine stamp into the same bounded
    /// ring, dumpable as JSONL (see [`QtdaService::serve_ops`] and
    /// [`FlightRecorder::dump_jsonl`]). Recording never changes result
    /// bits.
    pub events: Option<Arc<FlightRecorder>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry { registry: Arc::new(MetricsRegistry::new()), trace_tickets: false, events: None }
    }
}

impl Telemetry {
    /// Telemetry with ticket tracing on (fresh live registry).
    pub fn with_ticket_traces() -> Self {
        Telemetry { trace_tickets: true, ..Telemetry::default() }
    }

    /// Telemetry with a flight recorder holding up to `capacity` events
    /// (fresh live registry, no ticket traces).
    pub fn with_flight_recorder(capacity: usize) -> Self {
        Telemetry { events: Some(Arc::new(FlightRecorder::new(capacity))), ..Telemetry::default() }
    }
}

/// Liveness/readiness flags shared between a service and any ops
/// servers it spawned: the probe closure holds its own `Arc`, so
/// `/ready` keeps answering (503) even after the service itself has
/// been shut down and dropped.
#[derive(Debug)]
struct ServiceHealth {
    /// Cleared when shutdown begins — the queue stops accepting.
    accepting: AtomicBool,
    /// Cleared when the batcher thread exits, normally or by unwind.
    batcher_alive: AtomicBool,
}

impl ServiceHealth {
    fn new() -> Self {
        ServiceHealth { accepting: AtomicBool::new(true), batcher_alive: AtomicBool::new(true) }
    }

    fn is_ready(&self) -> bool {
        self.accepting.load(Ordering::Relaxed) && self.batcher_alive.load(Ordering::Relaxed)
    }
}

/// What actually serves a micro-batch: the classic single engine
/// ([`ServiceConfig::shards`] ≤ 1 — byte-for-byte the pre-cluster
/// behaviour, unlabelled metrics and all), or a [`ClusterEngine`]
/// routing across N shard engines. Both expose the same streaming QoS
/// entry point and produce bit-identical results, so the batcher does
/// not care which one it feeds.
enum Backend {
    Single(Arc<BatchEngine>),
    Cluster(Arc<ClusterEngine>),
}

impl Backend {
    fn recorder(&self) -> &Arc<FlightRecorder> {
        match self {
            Backend::Single(engine) => engine.recorder(),
            Backend::Cluster(cluster) => cluster.recorder(),
        }
    }

    fn run_batch_streaming_qos(
        &self,
        requests: &[JobRequest],
        sink: &qtda_engine::batch::SliceSink<'_>,
    ) -> Vec<JobOutcome> {
        match self {
            Backend::Single(engine) => engine.run_batch_streaming_qos(requests, sink),
            Backend::Cluster(cluster) => cluster.run_batch_streaming_qos(requests, sink),
        }
    }

    /// The backend's own liveness: trivially `true` for a single
    /// engine (it runs on the batcher's thread), every-shard-alive for
    /// a cluster.
    fn is_ready(&self) -> bool {
        match self {
            Backend::Single(_) => true,
            Backend::Cluster(cluster) => cluster.is_ready(),
        }
    }
}

/// The streaming Betti-serving service: a [`BatchEngine`] (or, with
/// [`ServiceConfig::shards`] > 1, a sharded [`ClusterEngine`]) behind
/// a bounded three-class priority queue and a deadline micro-batcher,
/// returning a [`Ticket`] per submission.
pub struct QtdaService {
    backend: Arc<Backend>,
    queue: Arc<SubmissionQueue>,
    counters: Arc<Counters>,
    registry: Arc<MetricsRegistry>,
    trace_tickets: bool,
    events: Option<Arc<FlightRecorder>>,
    health: Arc<ServiceHealth>,
    next_ticket: AtomicU64,
    batcher: Option<JoinHandle<()>>,
}

impl QtdaService {
    /// Starts a service (and its batcher thread) with the given
    /// configuration and default [`Telemetry`] (own live registry, no
    /// ticket traces).
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_telemetry(config, Telemetry::default())
    }

    /// Starts a service publishing into the given [`Telemetry`] — the
    /// owned engine registers its `qtda_engine_*` metrics into the same
    /// registry, so one
    /// [`registry().snapshot()`](MetricsRegistry::snapshot) exposes the
    /// whole serving stack.
    pub fn with_telemetry(config: ServiceConfig, telemetry: Telemetry) -> Self {
        assert!(config.max_batch_size >= 1, "micro-batches need at least one job");
        let registry = telemetry.registry;
        let events = telemetry.events;
        let backend = if config.shards > 1 {
            Arc::new(Backend::Cluster(Arc::new(ClusterEngine::with_observability(
                ClusterConfig {
                    engine: config.engine,
                    shards: config.shards,
                    ..ClusterConfig::default()
                },
                Arc::clone(&registry),
                events.clone(),
            ))))
        } else {
            Arc::new(Backend::Single(Arc::new(BatchEngine::with_observability(
                config.engine,
                Arc::clone(&registry),
                events.clone(),
            ))))
        };
        let queue = Arc::new(SubmissionQueue::with_depth_gauge(
            config.queue_capacity,
            config.priority_bypass,
            registry.gauge("qtda_service_queue_depth"),
        ));
        let counters = Arc::new(Counters::register(&registry));
        let health = Arc::new(ServiceHealth::new());
        let batcher = {
            let backend = Arc::clone(&backend);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let health = Arc::clone(&health);
            std::thread::Builder::new()
                .name("qtda-service-batcher".into())
                .spawn(move || batcher_loop(&backend, &queue, &counters, &health, config))
                .expect("spawning the batcher thread")
        };
        QtdaService {
            backend,
            queue,
            counters,
            registry,
            trace_tickets: telemetry.trace_tickets,
            events,
            health,
            next_ticket: AtomicU64::new(0),
            batcher: Some(batcher),
        }
    }

    /// A service with [`ServiceConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Submits a job under the default QoS (Normal class, no deadline),
    /// blocking while the queue is full (backpressure by waiting).
    /// Fails only during shutdown.
    pub fn submit(&self, job: BettiJob) -> Result<Ticket, SubmitError> {
        self.submit_with(job, QosPolicy::default())
    }

    /// Submits a job under an explicit [`QosPolicy`] — priority class,
    /// optional deadline, cancellation (also reachable later through
    /// [`Ticket::cancel`]). Blocks while the queue is full.
    pub fn submit_with(&self, job: BettiJob, qos: QosPolicy) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(job, qos);
        let priority = request.qos.priority;
        let submit_event = prepared_submit_event(self.backend.recorder(), &request);
        let journal_key = submit_event.as_ref().map(|(t, f, _)| (*t, *f));
        self.stamp_submit(submit_event);
        if let Err(err) = self.queue.push_blocking(request) {
            self.stamp_rejected(journal_key, "shutting-down");
            return Err(err);
        }
        self.counters.record_submit(priority);
        Ok(ticket)
    }

    /// Submits without blocking: [`SubmitError::Overloaded`] hands the
    /// job straight back when the bounded queue is full — the caller
    /// decides whether to retry, shed, or block via [`Self::submit`].
    pub fn try_submit(&self, job: BettiJob) -> Result<Ticket, SubmitError> {
        self.try_submit_with(job, QosPolicy::default())
    }

    /// [`Self::submit_with`] without blocking.
    pub fn try_submit_with(&self, job: BettiJob, qos: QosPolicy) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(job, qos);
        let priority = request.qos.priority;
        let submit_event = prepared_submit_event(self.backend.recorder(), &request);
        let journal_key = submit_event.as_ref().map(|(t, f, _)| (*t, *f));
        self.stamp_submit(submit_event);
        match self.queue.try_push(request) {
            Ok(()) => {
                self.counters.record_submit(priority);
                Ok(ticket)
            }
            Err(err) => {
                if matches!(err, SubmitError::Overloaded(_)) {
                    self.counters.rejected_overloaded.inc();
                }
                let reason = match &err {
                    SubmitError::Overloaded(_) => "overloaded",
                    SubmitError::ShuttingDown(_) => "shutting-down",
                };
                self.stamp_rejected(journal_key, reason);
                Err(err)
            }
        }
    }

    /// Stamps a `Submit` event prepared *before* the request was moved
    /// into the queue. The stamp happens **before** the push: once the
    /// request is queued, the batcher may pop (and abort) it at any
    /// moment, and a ticket's journal chain must still start at its
    /// submission. A push the queue then refuses is closed out by
    /// [`Self::stamp_rejected`].
    fn stamp_submit(&self, event: Option<(u64, u64, String)>) {
        if let Some((ticket, fingerprint, detail)) = event {
            self.backend.recorder().record(EventKind::Submit, ticket, fingerprint, detail);
        }
    }

    /// Terminates the journal chain of a submission the queue refused —
    /// the push never succeeded, so no batcher or engine event will
    /// ever follow for this ticket. `key` is `None` whenever the
    /// recorder is disabled (no `Submit` was stamped either).
    fn stamp_rejected(&self, key: Option<(u64, u64)>, reason: &str) {
        if let Some((ticket, fingerprint)) = key {
            let recorder = self.backend.recorder();
            recorder.record(
                EventKind::Cancel,
                ticket,
                fingerprint,
                format!("at=admission reason={reason}"),
            );
            recorder.record(EventKind::Abort, ticket, fingerprint, "reason=rejected".to_string());
        }
    }

    fn make_request(&self, job: BettiJob, qos: QosPolicy) -> (Request, Ticket) {
        let (tx, rx) = channel();
        let cancel = qos.cancel_token();
        let trace = if self.trace_tickets { Tracer::new() } else { Tracer::disabled() };
        // Ticket ids start at 1: id 0 is the engine's "no ticket"
        // sentinel for jobs submitted through the raw batch API.
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed) + 1;
        let request =
            Request { job, qos, tx, accepted_at: Instant::now(), trace: trace.clone(), ticket: id };
        (request, Ticket { rx, outcome: None, cancel, trace, id })
    }

    /// The engine behind the service (for its cache/dedup/unit/QoS
    /// counters; the engine's cache persists across micro-batches). In
    /// cluster mode ([`ServiceConfig::shards`] > 1) this is shard 0's
    /// engine — use [`Self::cluster`] for per-shard and aggregate
    /// views.
    pub fn engine(&self) -> &BatchEngine {
        match self.backend.as_ref() {
            Backend::Single(engine) => engine,
            Backend::Cluster(cluster) => cluster.shard_engine(0),
        }
    }

    /// The sharded cluster behind the service, when
    /// [`ServiceConfig::shards`] > 1 (`None` in classic single-engine
    /// mode). Exposes per-shard engines/stats, the summed cluster
    /// stats, and ring probing.
    pub fn cluster(&self) -> Option<&Arc<ClusterEngine>> {
        match self.backend.as_ref() {
            Backend::Single(_) => None,
            Backend::Cluster(cluster) => Some(cluster),
        }
    }

    /// The metrics registry behind this service and its engine. Call
    /// [`snapshot()`](MetricsRegistry::snapshot) for a mergeable
    /// point-in-time view with Prometheus text and JSON exposition of
    /// every `qtda_service_*` and `qtda_engine_*` metric.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The flight recorder this service (and its engine) stamp events
    /// into, when [`Telemetry::events`] configured one.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.events.as_ref()
    }

    /// `true` while the service accepts submissions, its batcher
    /// thread is alive, **and** (in cluster mode) every engine shard's
    /// thread is alive — exactly what an ops server's `/ready`
    /// endpoint reports.
    pub fn is_ready(&self) -> bool {
        self.health.is_ready() && self.backend.is_ready()
    }

    /// Binds a [`ScrapeServer`] on `addr` (use port 0 for an ephemeral
    /// port; see [`ScrapeServer::local_addr`]) exposing this service's
    /// whole stack over plain HTTP/1.1:
    ///
    /// * `GET /metrics` — Prometheus text exposition of every
    ///   `qtda_service_*` and `qtda_engine_*` metric,
    /// * `GET /metrics.json` — the same snapshot as JSON,
    /// * `GET /health` — `200 ok` while the process is up,
    /// * `GET /ready` — `200` while accepting and batching (and, in
    ///   cluster mode, while every shard is alive), `503` after
    ///   shutdown or a shard death (the probe holds its own handles
    ///   and outlives the service),
    /// * `GET /events.jsonl` / `GET /abort.jsonl` — flight-recorder
    ///   dumps, when [`Telemetry::events`] configured a recorder.
    ///
    /// The returned server owns one background accept thread; drop it
    /// (or call [`ScrapeServer::shutdown`]) to stop serving. Serving
    /// scrapes never perturbs results — scraping reads atomics.
    pub fn serve_ops(&self, addr: impl ToSocketAddrs) -> std::io::Result<ScrapeServer> {
        let health = Arc::clone(&self.health);
        let backend = Arc::clone(&self.backend);
        let mut state = OpsState::new(Arc::clone(&self.registry))
            .with_ready_probe(move || health.is_ready() && backend.is_ready());
        if let Some(recorder) = &self.events {
            state = state.with_recorder(Arc::clone(recorder));
        }
        ScrapeServer::bind(addr, state)
    }

    /// A snapshot of the service-level counters.
    pub fn stats(&self) -> ServiceStats {
        self.counters.snapshot()
    }

    /// Jobs accepted but not yet picked into a micro-batch.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Stops accepting work, **drains** everything already accepted
    /// (every outstanding ticket still resolves — completed or
    /// aborted), and joins the batcher thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.health.accepting.store(false, Ordering::Relaxed);
        self.queue.close();
        if let Some(handle) = self.batcher.take() {
            if handle.join().is_err() {
                // The batcher only panics if the engine did (a worker
                // panic propagated through the scoped pool). Outstanding
                // tickets observe a closed channel; surfacing the panic
                // here would double-report it during unwinding.
                eprintln!("qtda-service: batcher thread panicked; in-flight tickets abandoned");
            }
        }
    }
}

impl Drop for QtdaService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Closes the queue when the batcher exits — crucially also on
/// *unwind*: if an engine worker panic kills the batcher, producers
/// parked in `push_blocking` (and all future submitters) must observe
/// `ShuttingDown` instead of waiting on a queue nobody will ever pop
/// again. Also clears the shared `batcher_alive` readiness flag, so a
/// live ops server's `/ready` flips to 503 the moment batching stops.
struct CloseOnExit<'a> {
    queue: &'a SubmissionQueue,
    health: &'a ServiceHealth,
}

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        self.health.batcher_alive.store(false, Ordering::Relaxed);
        self.queue.close();
    }
}

/// The batcher thread: gather → serve → stream, until closed and
/// drained. The backend is the single engine or the shard cluster —
/// micro-batching policy is identical either way.
fn batcher_loop(
    backend: &Backend,
    queue: &SubmissionQueue,
    counters: &Counters,
    health: &ServiceHealth,
    config: ServiceConfig,
) {
    let _close_on_exit = CloseOnExit { queue, health };
    let recorder = backend.recorder();
    while let Some(first) = queue.pop_blocking() {
        let accepted_at = first.accepted_at;
        let mut batch: Vec<(Request, Instant)> = Vec::with_capacity(config.max_batch_size);
        admit(first, counters, recorder, &mut batch);
        // Gather while the batch is short of its size cap. An empty
        // `batch` (first request dead on arrival) keeps gathering with
        // the dead request's clock — bounded and simple; the next loop
        // iteration re-anchors.
        while batch.len() < config.max_batch_size {
            // Re-derive the deadline as the batch fills: the backlog
            // (batch + queue) only grows, so the adaptive linger is
            // monotone non-increasing and a deep backlog dispatches
            // without waiting out the full deadline. An interactive
            // request anywhere in the batch (or already waiting in the
            // queue) zeroes it outright: express traffic never waits
            // for company it does not need.
            let interactive = batch.iter().any(|(r, _)| r.qos.priority == Priority::Interactive)
                || queue.interactive_waiting();
            let linger = if interactive {
                Duration::ZERO
            } else if config.adaptive_linger {
                effective_linger(
                    config.max_linger,
                    batch.len() + queue.len(),
                    config.max_batch_size,
                )
            } else {
                config.max_linger
            };
            match queue.pop_until(accepted_at + linger) {
                Some(request) => admit(request, counters, recorder, &mut batch),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        counters.record_batch(batch.len() as u64);
        record_batch_formed(recorder, &batch);

        // The linger stage ends for every member when the batch
        // dispatches — time spent gathering company, paid for
        // throughput.
        let dispatched_at = Instant::now();
        for (r, popped_at) in &batch {
            record_stage(&r.trace, "linger", *popped_at, dispatched_at);
        }
        let requests: Vec<JobRequest> = batch
            .iter()
            .map(|(r, _)| JobRequest {
                job: r.job.clone(),
                qos: r.qos.clone(),
                trace: r.trace.clone(),
                ticket: r.ticket,
            })
            .collect();
        let parties: Vec<Request> = batch.into_iter().map(|(r, _)| r).collect();
        // Stream every slice to its ticket as the engine announces it;
        // engine-side aborts forward as terminal events immediately.
        // A send only fails when the consumer dropped the ticket —
        // results are simply discarded then, like any lost interest.
        let outcomes =
            backend.run_batch_streaming_qos(&requests, &|event: SliceEvent| match event {
                SliceEvent::Slice { job_index, slice_index, result } => {
                    let slice = StreamedSlice { slice_index, result };
                    let _ = parties[job_index].tx.send(TicketEvent::Slice(slice));
                }
                SliceEvent::Aborted { job_index, reason } => {
                    let _ = parties[job_index].tx.send(TicketEvent::Aborted(reason));
                }
            });
        let delivery_started = Instant::now();
        for (request, outcome) in parties.iter().zip(outcomes) {
            // Count (and close the trace) before sending: a consumer
            // that observes a terminal event must never read a counter
            // that excludes its job, nor a trace missing its delivery.
            counters.record_request_latency(request.qos.priority, request.accepted_at.elapsed());
            record_stage(&request.trace, "delivery", delivery_started, Instant::now());
            match outcome {
                JobOutcome::Completed(result) => {
                    counters.completed.inc();
                    let _ = request.tx.send(TicketEvent::Done(result));
                }
                JobOutcome::Aborted(reason) => {
                    counters.record_abort(reason);
                    // The engine stamped the `Abort` event while mapping
                    // outcomes; here the journal chain for this ticket
                    // is complete, so snapshot it for `/abort.jsonl`.
                    recorder.capture_abort(request.ticket);
                    // Possibly a duplicate of the engine's streamed
                    // abort — the ticket keeps the first terminal event.
                    let _ = request.tx.send(TicketEvent::Aborted(reason));
                }
            }
        }
    }
}

/// Records queue wait (histogram + trace span) for a freshly popped
/// request, then admits it to the gathering micro-batch — unless it was
/// cancelled while queued, in which case it is aborted on the spot and
/// never occupies a slot. The paired `Instant` is the pop time, where
/// the request's `linger` stage begins.
fn admit(
    request: Request,
    counters: &Counters,
    recorder: &FlightRecorder,
    batch: &mut Vec<(Request, Instant)>,
) {
    let popped_at = Instant::now();
    counters.record_queue_wait(popped_at.duration_since(request.accepted_at));
    record_stage(&request.trace, "queue_wait", request.accepted_at, popped_at);
    if !abort_if_dead(&request, counters, recorder) {
        batch.push((request, popped_at));
    }
}

/// Aborts a request cancelled while queued by sending the terminal
/// event directly — it never occupies a micro-batch slot. Returns
/// `true` when the request was aborted (and must not be batched).
///
/// Only **cancellation** is final here. A deadline-expired request
/// still flows into a micro-batch: the engine skips its units at the
/// first boundary check (no compute is wasted), but an answer already
/// sitting in the LRU cache is delivered for free — the same
/// "best-effort deadline never discards a ready answer" semantics the
/// engine implements, kept uniform across layers.
fn abort_if_dead(request: &Request, counters: &Counters, recorder: &FlightRecorder) -> bool {
    if request.qos.cancel.is_cancelled() {
        counters.record_abort(qtda_engine::AbortReason::Cancelled);
        // This request dies before ever reaching the engine, so the
        // service stamps the full terminal chain itself.
        record_request_event(recorder, EventKind::Cancel, request, || "at=queue".into());
        record_request_event(recorder, EventKind::Abort, request, || "reason=cancelled".into());
        recorder.capture_abort(request.ticket);
        let _ = request.tx.send(TicketEvent::Aborted(qtda_engine::AbortReason::Cancelled));
        true
    } else {
        false
    }
}

/// The adaptive linger policy: full deadline for a lone request, shrunk
/// proportionally as the backlog approaches the batch size, zero once
/// the batch could fill without waiting.
fn effective_linger(max_linger: Duration, backlog: usize, max_batch_size: usize) -> Duration {
    if backlog >= max_batch_size {
        return Duration::ZERO;
    }
    max_linger.mul_f64(1.0 - backlog as f64 / max_batch_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_linger_shrinks_toward_zero_with_backlog() {
        let max = Duration::from_millis(800);
        assert_eq!(effective_linger(max, 16, 16), Duration::ZERO, "full backlog waits nothing");
        assert_eq!(effective_linger(max, 40, 16), Duration::ZERO, "overfull backlog too");
        assert_eq!(
            effective_linger(max, 8, 16),
            Duration::from_millis(400),
            "half backlog, half wait"
        );
        let lone = effective_linger(max, 1, 16);
        assert_eq!(lone, Duration::from_millis(750), "a lone request lingers almost fully");
        // Monotone non-increasing in backlog.
        let mut last = Duration::MAX;
        for backlog in 1..=17 {
            let l = effective_linger(max, backlog, 16);
            assert!(l <= last, "backlog {backlog}");
            last = l;
        }
    }
}
