//! The bounded submission queue: where backpressure lives.
//!
//! Producers push [`Request`]s, the batcher thread pops them. The queue
//! is bounded: [`BoundedQueue::try_push`] refuses instead of growing
//! ([`SubmitError::Overloaded`]), and [`BoundedQueue::push_blocking`]
//! parks the producer until a slot frees — the two standard backpressure
//! contracts. Closing the queue ([`BoundedQueue::close`]) rejects new
//! submissions but lets the batcher drain everything already accepted,
//! which is what gives `shutdown()` its no-lost-work guarantee.
//!
//! Built on `Mutex` + `Condvar` in the style of the vendored rayon
//! shim's pool (the environment has no async runtime): one condvar for
//! "no longer full" (producers wait), one for "no longer empty" (the
//! batcher waits, with a deadline while lingering for a micro-batch).

use crate::ticket::TicketEvent;
use qtda_engine::BettiJob;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One accepted submission travelling from a producer to the batcher.
pub(crate) struct Request {
    /// The job to serve.
    pub job: BettiJob,
    /// Where this request's ticket listens.
    pub tx: Sender<TicketEvent>,
    /// When the producer handed the job over (micro-batch deadlines and
    /// latency accounting key off this).
    pub accepted_at: Instant,
}

/// Why a submission was not accepted. Boxed so the error path stays as
/// cheap to return as the success path (a `BettiJob` carries a whole
/// point cloud).
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full — backpressure. The job is handed back
    /// so the producer can retry, shed, or block via `submit`.
    Overloaded(Box<BettiJob>),
    /// The service is shutting down and accepts no new work.
    ShuttingDown(Box<BettiJob>),
}

impl SubmitError {
    /// Recovers the job that was not accepted.
    pub fn into_job(self) -> BettiJob {
        match self {
            SubmitError::Overloaded(job) | SubmitError::ShuttingDown(job) => *job,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded(_) => write!(f, "submission queue full (backpressure)"),
            SubmitError::ShuttingDown(_) => write!(f, "service is shutting down"),
        }
    }
}

struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
}

/// A bounded MPSC queue with blocking and non-blocking producers and a
/// deadline-aware consumer.
pub(crate) struct BoundedQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl BoundedQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Non-blocking push: `Overloaded` when full, `ShuttingDown` after
    /// close.
    pub fn try_push(&self, request: Request) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(SubmitError::ShuttingDown(Box::new(request.job)));
        }
        if state.items.len() >= self.capacity {
            return Err(SubmitError::Overloaded(Box::new(request.job)));
        }
        state.items.push_back(request);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: parks until a slot frees; `ShuttingDown` if the
    /// queue closes while waiting.
    pub fn push_blocking(&self, request: Request) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(SubmitError::ShuttingDown(Box::new(request.job)));
        }
        state.items.push_back(request);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop for the batcher's *first* request of a micro-batch:
    /// parks until something arrives; `None` once the queue is closed
    /// **and** drained (the batcher's exit signal).
    pub fn pop_blocking(&self) -> Option<Request> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(request) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(request);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Deadline-bounded pop for lingering: returns an already-queued
    /// request immediately; otherwise waits until `deadline` for one.
    /// `None` means the linger window closed empty (deadline passed, or
    /// the queue closed while empty — shutdown cuts the linger short).
    pub fn pop_until(&self, deadline: Instant) -> Option<Request> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(request) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(request);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) =
                self.not_empty.wait_timeout(state, deadline - now).expect("queue poisoned");
            state = guard;
        }
    }

    /// Stops accepting submissions and wakes every waiter. Queued
    /// requests stay poppable so the batcher can drain them.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Requests currently queued (not yet picked into a micro-batch).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtda_tda::point_cloud::PointCloud;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn request() -> Request {
        let (tx, _rx) = channel();
        Request {
            job: BettiJob::new(PointCloud::new(1, vec![0.0, 1.0]), vec![0.5]),
            tx,
            accepted_at: Instant::now(),
        }
    }

    #[test]
    fn try_push_reports_overload_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(request()).is_ok());
        assert!(q.try_push(request()).is_ok());
        match q.try_push(request()) {
            Err(SubmitError::Overloaded(_)) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        q.pop_blocking();
        assert!(q.try_push(request()).is_ok(), "popping frees a slot");
    }

    #[test]
    fn close_rejects_new_but_drains_queued() {
        let q = BoundedQueue::new(4);
        q.try_push(request()).unwrap();
        q.try_push(request()).unwrap();
        q.close();
        match q.try_push(request()) {
            Err(SubmitError::ShuttingDown(_)) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_none(), "closed and drained");
    }

    #[test]
    fn pop_until_returns_queued_items_past_deadline() {
        let q = BoundedQueue::new(4);
        q.try_push(request()).unwrap();
        // A deadline in the past still drains what is already queued.
        let past = Instant::now() - Duration::from_millis(10);
        assert!(q.pop_until(past).is_some());
        assert!(q.pop_until(past).is_none(), "empty + expired deadline");
    }

    #[test]
    fn pop_until_times_out_empty() {
        let q = BoundedQueue::new(1);
        let t = Instant::now();
        assert!(q.pop_until(Instant::now() + Duration::from_millis(20)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(15), "waited for the deadline");
    }

    #[test]
    fn submit_error_hands_the_job_back() {
        let q = BoundedQueue::new(1);
        q.try_push(request()).unwrap();
        let job = q.try_push(request()).unwrap_err().into_job();
        assert_eq!(job.epsilons, vec![0.5]);
    }
}
