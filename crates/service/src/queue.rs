//! The bounded **priority** submission queue: where backpressure and
//! serving classes live.
//!
//! Producers push [`Request`]s, the batcher thread pops them. The queue
//! holds one ring per [`Priority`] class under a shared capacity bound:
//! [`SubmissionQueue::try_push`] refuses instead of growing
//! ([`SubmitError::Overloaded`]), and [`SubmissionQueue::push_blocking`]
//! parks the producer until a slot frees — the two standard
//! backpressure contracts. Closing the queue
//! ([`SubmissionQueue::close`]) rejects new submissions but lets the
//! batcher drain everything already accepted, which is what gives
//! `shutdown()` its no-lost-work guarantee.
//!
//! **Pop order.** A pop serves the highest-priority non-empty class
//! (Interactive → Normal → Bulk), FIFO within a class. Strict priority
//! starves: sustained interactive load would park bulk work forever, so
//! the queue runs a **bounded bypass** — after `bypass_limit`
//! consecutive pops that jumped past a waiting lower class, the next
//! pop serves the **oldest waiting head among the passed-over classes**
//! and the streak resets. At least every `bypass_limit + 1`-th pop
//! therefore reaches the passed-over tail, and because each bypass
//! picks by arrival age (and every new arrival is strictly newer than
//! the heads already waiting), no individual request — in *any* class —
//! can be bypassed forever. Priority shapes only *when* a request is
//! served, never its results (seeds are content-derived).
//!
//! Built on `Mutex` + `Condvar` in the style of the vendored rayon
//! shim's pool (the environment has no async runtime): one condvar for
//! "no longer full" (producers wait), one for "no longer empty" (the
//! batcher waits, with a deadline while lingering for a micro-batch).

use crate::ticket::TicketEvent;
use qtda_engine::{BettiJob, Priority, QosPolicy, Tracer};
use qtda_obs::Gauge;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One accepted submission travelling from a producer to the batcher.
pub(crate) struct Request {
    /// The job to serve.
    pub job: BettiJob,
    /// Its quality-of-service policy (class, deadline, cancel token).
    pub qos: QosPolicy,
    /// Where this request's ticket listens.
    pub tx: Sender<TicketEvent>,
    /// When the producer handed the job over (micro-batch deadlines and
    /// latency accounting key off this).
    pub accepted_at: Instant,
    /// Per-ticket stage tracer (disabled unless the service was built
    /// with ticket tracing on).
    pub trace: Tracer,
    /// The service-assigned ticket id (starts at 1) stamped on every
    /// flight-recorder event this request produces, service- and
    /// engine-side alike.
    pub ticket: u64,
}

/// Why a submission was not accepted. Boxed so the error path stays as
/// cheap to return as the success path (a `BettiJob` carries a whole
/// point cloud).
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full — backpressure. The job is handed back
    /// so the producer can retry, shed, or block via `submit`.
    Overloaded(Box<BettiJob>),
    /// The service is shutting down and accepts no new work.
    ShuttingDown(Box<BettiJob>),
}

impl SubmitError {
    /// Recovers the job that was not accepted.
    pub fn into_job(self) -> BettiJob {
        match self {
            SubmitError::Overloaded(job) | SubmitError::ShuttingDown(job) => *job,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded(_) => write!(f, "submission queue full (backpressure)"),
            SubmitError::ShuttingDown(_) => write!(f, "service is shutting down"),
        }
    }
}

struct QueueState {
    /// One FIFO ring per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<Request>; 3],
    /// Consecutive pops that bypassed a waiting lower-priority class.
    express_streak: usize,
    closed: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// The bounded-bypass pop policy (see module docs). A bypass serves
    /// the **oldest waiting head** among the passed-over classes — not
    /// blindly the lowest class — so no class can starve: a Normal
    /// request stuck behind sustained Interactive traffic only yields
    /// bypasses to Bulk heads that have waited *longer*, and every new
    /// arrival is strictly newer than the heads it queues behind.
    fn pop(&mut self, bypass_limit: usize) -> Option<Request> {
        let highest =
            Priority::CLASSES.iter().map(|p| p.index()).find(|&c| !self.classes[c].is_empty())?;
        let passed_over: Vec<usize> = (highest + 1..Priority::CLASSES.len())
            .filter(|&c| !self.classes[c].is_empty())
            .collect();
        let chosen = if !passed_over.is_empty() && self.express_streak >= bypass_limit {
            self.express_streak = 0;
            passed_over
                .into_iter()
                .min_by_key(|&c| {
                    self.classes[c].front().expect("passed-over classes are non-empty").accepted_at
                })
                .expect("at least one passed-over class")
        } else {
            if passed_over.is_empty() {
                // Nothing is being passed over — the streak is moot.
                self.express_streak = 0;
            } else {
                self.express_streak += 1;
            }
            highest
        };
        self.classes[chosen].pop_front()
    }
}

/// A bounded MPSC priority queue with blocking and non-blocking
/// producers and a deadline-aware consumer.
pub(crate) struct SubmissionQueue {
    capacity: usize,
    bypass_limit: usize,
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    /// Published queue depth (`qtda_service_queue_depth`), updated
    /// under the state lock on every push/pop so the gauge can never
    /// drift from `len()`.
    depth: Gauge,
}

impl SubmissionQueue {
    /// A queue admitting at most `capacity` requests across all
    /// classes, serving the oldest passed-over request after
    /// `bypass_limit` consecutive priority bypasses. Unit tests only —
    /// the service always constructs through
    /// [`SubmissionQueue::with_depth_gauge`].
    #[cfg(test)]
    pub fn new(capacity: usize, bypass_limit: usize) -> Self {
        Self::with_depth_gauge(capacity, bypass_limit, Gauge::noop())
    }

    /// [`SubmissionQueue::new`] publishing its depth into `depth`.
    pub fn with_depth_gauge(capacity: usize, bypass_limit: usize, depth: Gauge) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        assert!(bypass_limit >= 1, "a zero bypass limit would invert the priority order");
        SubmissionQueue {
            capacity,
            bypass_limit,
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                express_streak: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            depth,
        }
    }

    /// Non-blocking push: `Overloaded` when full, `ShuttingDown` after
    /// close.
    pub fn try_push(&self, request: Request) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(SubmitError::ShuttingDown(Box::new(request.job)));
        }
        if state.len() >= self.capacity {
            return Err(SubmitError::Overloaded(Box::new(request.job)));
        }
        let class = request.qos.priority.index();
        state.classes[class].push_back(request);
        self.depth.set(state.len() as u64);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: parks until a slot frees; `ShuttingDown` if the
    /// queue closes while waiting.
    pub fn push_blocking(&self, request: Request) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(SubmitError::ShuttingDown(Box::new(request.job)));
        }
        let class = request.qos.priority.index();
        state.classes[class].push_back(request);
        self.depth.set(state.len() as u64);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop for the batcher's *first* request of a micro-batch:
    /// parks until something arrives; `None` once the queue is closed
    /// **and** drained (the batcher's exit signal).
    pub fn pop_blocking(&self) -> Option<Request> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(request) = state.pop(self.bypass_limit) {
                self.depth.set(state.len() as u64);
                drop(state);
                self.not_full.notify_one();
                return Some(request);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Deadline-bounded pop for lingering: returns an already-queued
    /// request immediately; otherwise waits until `deadline` for one.
    /// `None` means the linger window closed empty (deadline passed, or
    /// the queue closed while empty — shutdown cuts the linger short).
    pub fn pop_until(&self, deadline: Instant) -> Option<Request> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(request) = state.pop(self.bypass_limit) {
                self.depth.set(state.len() as u64);
                drop(state);
                self.not_full.notify_one();
                return Some(request);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) =
                self.not_empty.wait_timeout(state, deadline - now).expect("queue poisoned");
            state = guard;
        }
    }

    /// Stops accepting submissions and wakes every waiter. Queued
    /// requests stay poppable so the batcher can drain them.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Requests currently queued (not yet picked into a micro-batch),
    /// across all classes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").len()
    }

    /// Whether any *interactive* request is waiting — the batcher stops
    /// lingering the moment one is.
    pub fn interactive_waiting(&self) -> bool {
        !self.state.lock().expect("queue poisoned").classes[Priority::Interactive.index()]
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtda_tda::point_cloud::PointCloud;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn request_with(qos: QosPolicy, tag: f64) -> Request {
        let (tx, _rx) = channel();
        Request {
            job: BettiJob::new(PointCloud::new(1, vec![0.0, 1.0]), vec![tag]),
            qos,
            tx,
            accepted_at: Instant::now(),
            trace: Tracer::disabled(),
            ticket: 0,
        }
    }

    fn request() -> Request {
        request_with(QosPolicy::default(), 0.5)
    }

    #[test]
    fn try_push_reports_overload_at_capacity() {
        let q = SubmissionQueue::new(2, 4);
        assert!(q.try_push(request()).is_ok());
        assert!(q.try_push(request()).is_ok());
        match q.try_push(request()) {
            Err(SubmitError::Overloaded(_)) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        q.pop_blocking();
        assert!(q.try_push(request()).is_ok(), "popping frees a slot");
    }

    #[test]
    fn capacity_is_shared_across_classes() {
        let q = SubmissionQueue::new(2, 4);
        q.try_push(request_with(QosPolicy::bulk(), 0.1)).unwrap();
        q.try_push(request_with(QosPolicy::interactive(), 0.2)).unwrap();
        match q.try_push(request_with(QosPolicy::interactive(), 0.3)) {
            Err(SubmitError::Overloaded(_)) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn close_rejects_new_but_drains_queued() {
        let q = SubmissionQueue::new(4, 4);
        q.try_push(request()).unwrap();
        q.try_push(request()).unwrap();
        q.close();
        match q.try_push(request()) {
            Err(SubmitError::ShuttingDown(_)) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_none(), "closed and drained");
    }

    #[test]
    fn pop_until_returns_queued_items_past_deadline() {
        let q = SubmissionQueue::new(4, 4);
        q.try_push(request()).unwrap();
        // A deadline in the past still drains what is already queued.
        let past = Instant::now() - Duration::from_millis(10);
        assert!(q.pop_until(past).is_some());
        assert!(q.pop_until(past).is_none(), "empty + expired deadline");
    }

    #[test]
    fn pop_until_times_out_empty() {
        let q = SubmissionQueue::new(1, 4);
        let t = Instant::now();
        assert!(q.pop_until(Instant::now() + Duration::from_millis(20)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(15), "waited for the deadline");
    }

    #[test]
    fn submit_error_hands_the_job_back() {
        let q = SubmissionQueue::new(1, 4);
        q.try_push(request()).unwrap();
        let job = q.try_push(request()).unwrap_err().into_job();
        assert_eq!(job.epsilons, vec![0.5]);
    }

    #[test]
    fn pops_serve_higher_classes_first_fifo_within_a_class() {
        let q = SubmissionQueue::new(8, 100);
        q.try_push(request_with(QosPolicy::bulk(), 1.0)).unwrap();
        q.try_push(request_with(QosPolicy::normal(), 2.0)).unwrap();
        q.try_push(request_with(QosPolicy::interactive(), 3.0)).unwrap();
        q.try_push(request_with(QosPolicy::interactive(), 4.0)).unwrap();
        q.try_push(request_with(QosPolicy::normal(), 5.0)).unwrap();
        let order: Vec<f64> = (0..5).map(|_| q.pop_blocking().unwrap().job.epsilons[0]).collect();
        assert_eq!(order, vec![3.0, 4.0, 2.0, 5.0, 1.0]);
    }

    /// The starvation guard: with interactive traffic always waiting,
    /// every `bypass_limit + 1`-th pop must reach the bulk tail.
    #[test]
    fn bounded_bypass_serves_the_starved_tail() {
        let q = SubmissionQueue::new(64, 3);
        q.try_push(request_with(QosPolicy::bulk(), 100.0)).unwrap();
        q.try_push(request_with(QosPolicy::bulk(), 101.0)).unwrap();
        for i in 0..10 {
            q.try_push(request_with(QosPolicy::interactive(), i as f64)).unwrap();
        }
        let order: Vec<f64> = (0..12).map(|_| q.pop_blocking().unwrap().job.epsilons[0]).collect();
        // Three interactive pops bypass the waiting bulk, then the
        // fourth serves the bulk tail; same again; the rest drain FIFO.
        assert_eq!(order, vec![0.0, 1.0, 2.0, 100.0, 3.0, 4.0, 5.0, 101.0, 6.0, 7.0, 8.0, 9.0]);
    }

    /// The middle class cannot starve: bypasses pick the **oldest**
    /// passed-over head, so a Normal request behind sustained
    /// Interactive traffic only yields to Bulk heads that arrived
    /// earlier — never to the whole Bulk backlog.
    #[test]
    fn bypass_cannot_starve_the_middle_class() {
        let q = SubmissionQueue::new(64, 2);
        // Distinct arrival instants (the bypass orders by age).
        q.try_push(request_with(QosPolicy::bulk(), 100.0)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        q.try_push(request_with(QosPolicy::bulk(), 101.0)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        q.try_push(request_with(QosPolicy::normal(), 50.0)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        for i in 0..8 {
            q.try_push(request_with(QosPolicy::interactive(), i as f64)).unwrap();
        }
        let order: Vec<f64> = (0..11).map(|_| q.pop_blocking().unwrap().job.epsilons[0]).collect();
        // Bypasses at every 3rd pop serve, by age: Bulk 100, Bulk 101,
        // then the Normal request — it waits behind older Bulk heads
        // only, not behind the entire Bulk tail.
        assert_eq!(order, vec![0.0, 1.0, 100.0, 2.0, 3.0, 101.0, 4.0, 5.0, 50.0, 6.0, 7.0]);
    }

    /// A sole class never trips the bypass accounting: draining pure
    /// interactive (or pure bulk) traffic is plain FIFO.
    #[test]
    fn bypass_streak_resets_when_nothing_is_passed_over() {
        let q = SubmissionQueue::new(16, 2);
        for i in 0..5 {
            q.try_push(request_with(QosPolicy::interactive(), i as f64)).unwrap();
        }
        let order: Vec<f64> = (0..5).map(|_| q.pop_blocking().unwrap().job.epsilons[0]).collect();
        assert_eq!(order, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        // A bulk job arriving later is not owed an immediate bypass.
        q.try_push(request_with(QosPolicy::interactive(), 10.0)).unwrap();
        q.try_push(request_with(QosPolicy::bulk(), 11.0)).unwrap();
        assert_eq!(q.pop_blocking().unwrap().job.epsilons[0], 10.0);
        assert_eq!(q.pop_blocking().unwrap().job.epsilons[0], 11.0);
    }

    #[test]
    fn interactive_waiting_reports_only_the_express_class() {
        let q = SubmissionQueue::new(8, 4);
        q.try_push(request_with(QosPolicy::bulk(), 1.0)).unwrap();
        assert!(!q.interactive_waiting());
        q.try_push(request_with(QosPolicy::interactive(), 2.0)).unwrap();
        assert!(q.interactive_waiting());
        q.pop_blocking();
        assert!(!q.interactive_waiting());
    }
}
