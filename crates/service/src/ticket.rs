//! The consumer's handle on a submitted job: a stream of slices, then
//! the assembled result.
//!
//! A [`Ticket`] is the receiving half of a per-request channel. The
//! batcher forwards every [`SliceEvent`](qtda_engine::SliceEvent) for
//! the request as the engine announces it — so slices arrive *while the
//! micro-batch is still computing* — and finishes with the job's
//! assembled [`JobResult`]. Slices arrive in completion order, which is
//! scheduling-dependent; their *content* is not (seeds are
//! content-derived), and each carries its ε-grid index, so
//! [`Ticket::collect`] can always restore grid order bit-identically to
//! [`BatchEngine::run_batch`](qtda_engine::BatchEngine::run_batch).

use qtda_engine::{JobResult, SliceResult};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;

/// One slice of a job, streamed before the job (let alone its batch)
/// completes.
#[derive(Clone, Debug)]
pub struct StreamedSlice {
    /// Index of this slice in the job's ε-grid (restores grid order).
    pub slice_index: usize,
    /// The completed slice — bit-identical to the same entry of the
    /// final [`JobResult`].
    pub result: SliceResult,
}

/// What the batcher sends a ticket.
pub(crate) enum TicketEvent {
    /// A slice finished.
    Slice(StreamedSlice),
    /// The whole job finished; no more slices follow.
    Done(Arc<JobResult>),
}

/// A handle on one submitted job, yielding its per-ε slices as their
/// estimation units complete and the assembled result at the end.
pub struct Ticket {
    pub(crate) rx: Receiver<TicketEvent>,
    pub(crate) result: Option<Arc<JobResult>>,
}

impl Ticket {
    /// Blocks for the next completed slice. `None` once the job is done
    /// (the assembled result is then available via [`Self::wait`]) — or
    /// if the service died before finishing the job, which
    /// [`Self::wait`] reports by panicking.
    pub fn next_slice(&mut self) -> Option<StreamedSlice> {
        if self.result.is_some() {
            return None;
        }
        match self.rx.recv() {
            Ok(TicketEvent::Slice(slice)) => Some(slice),
            Ok(TicketEvent::Done(result)) => {
                self.result = Some(result);
                None
            }
            Err(_) => None,
        }
    }

    /// Non-blocking variant of [`Self::next_slice`]: `None` when no
    /// slice has completed *yet* (distinguish via [`Self::is_done`]).
    pub fn try_next_slice(&mut self) -> Option<StreamedSlice> {
        if self.result.is_some() {
            return None;
        }
        match self.rx.try_recv() {
            Ok(TicketEvent::Slice(slice)) => Some(slice),
            Ok(TicketEvent::Done(result)) => {
                self.result = Some(result);
                None
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// `true` once the job's final result has been received.
    pub fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// Drains remaining slices and returns the assembled result.
    ///
    /// # Panics
    /// If the service terminated without completing this job (batcher
    /// thread died) — the one state that cannot produce a correct
    /// answer.
    pub fn wait(mut self) -> Arc<JobResult> {
        while self.next_slice().is_some() {}
        self.result.expect("service terminated before completing this job")
    }

    /// Drains the whole stream, returning every slice in *arrival*
    /// order alongside the assembled result — the convenient shape for
    /// tests and latency probes. Grid order is `slice_index` order.
    pub fn collect(mut self) -> (Vec<StreamedSlice>, Arc<JobResult>) {
        let mut slices = Vec::new();
        while let Some(slice) = self.next_slice() {
            slices.push(slice);
        }
        let result = self.result.expect("service terminated before completing this job");
        (slices, result)
    }
}
