//! The consumer's handle on a submitted job: a stream of slices, then a
//! terminal outcome — the assembled result, or an abort.
//!
//! A [`Ticket`] is the receiving half of a per-request channel. The
//! batcher forwards every [`SliceEvent`](qtda_engine::SliceEvent) for
//! the request as the engine announces it — so slices arrive *while the
//! micro-batch is still computing* — and finishes with exactly one
//! terminal event: the job's assembled [`JobResult`], or an
//! [`AbortReason`] if the request was cancelled or its deadline
//! expired. Slices arrive in completion order, which is
//! scheduling-dependent; their *content* is not (seeds are
//! content-derived), and each carries its ε-grid index, so
//! [`Ticket::collect`] can always restore grid order bit-identically to
//! [`BatchEngine::run_batch`](qtda_engine::BatchEngine::run_batch).
//!
//! **Cancellation** is a method on the ticket: [`Ticket::cancel`] trips
//! the request's [`CancelToken`](qtda_engine::CancelToken), which the
//! queue, batcher, and engine all poll at their unit boundaries. It is
//! cooperative and sticky — the ticket's terminal state is then
//! guaranteed to be [`TicketOutcome::Aborted`] with
//! [`AbortReason::Cancelled`], even if the shared computation finished
//! anyway (e.g. an identical uncancelled request kept it alive).

use qtda_engine::{AbortReason, CancelToken, JobResult, SliceResult, Tracer};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;

/// Per-stage wall times for one request — the service's `queue_wait`,
/// `linger`, and `delivery` stages plus the engine's `cache_probe`,
/// `arena_build`, and `solve`, as nested spans. Read a stage's total
/// with [`TicketTrace::stage`], or format the tree with
/// [`TicketTrace::render`]. Obtained from [`Ticket::trace`] when the
/// service was built with
/// [`Telemetry::trace_tickets`](crate::Telemetry) on.
pub use qtda_engine::Trace as TicketTrace;

/// One slice of a job, streamed before the job (let alone its batch)
/// completes.
#[derive(Clone, Debug)]
pub struct StreamedSlice {
    /// Index of this slice in the job's ε-grid (restores grid order).
    pub slice_index: usize,
    /// The completed slice — bit-identical to the same entry of the
    /// final [`JobResult`].
    pub result: SliceResult,
}

/// What the batcher sends a ticket.
pub(crate) enum TicketEvent {
    /// A slice finished.
    Slice(StreamedSlice),
    /// The whole job finished; no more slices follow.
    Done(Arc<JobResult>),
    /// The job was aborted; no more slices follow. (The batcher may
    /// send this twice — once from the engine's streamed abort, once
    /// when delivering outcomes; the first one wins.)
    Aborted(AbortReason),
}

/// How a ticket's job ended — the same shape at every layer, so this is
/// the engine's [`qtda_engine::JobOutcome`] re-exported under the name
/// the ticket API reads naturally: `Completed(Arc<JobResult>)` (slices
/// bit-identical to a plain `run_batch` of the same job and batch
/// seed) or `Aborted(AbortReason)` (cancelled, or overran its
/// deadline).
pub use qtda_engine::JobOutcome as TicketOutcome;

/// A handle on one submitted job, yielding its per-ε slices as their
/// estimation units complete and a terminal [`TicketOutcome`] at the
/// end.
pub struct Ticket {
    pub(crate) rx: Receiver<TicketEvent>,
    pub(crate) outcome: Option<TicketOutcome>,
    pub(crate) cancel: CancelToken,
    pub(crate) trace: Tracer,
    pub(crate) id: u64,
}

impl Ticket {
    /// The service-assigned ticket id (starting at 1) — the `ticket`
    /// field on every flight-recorder event this request produced, so
    /// a journal dump can be joined back to the handle that caused it
    /// (see [`qtda_engine::FlightRecorder::events_for_ticket`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The per-stage trace recorded for this request so far — `None`
    /// unless the service was built with
    /// [`Telemetry::trace_tickets`](crate::Telemetry) on. Spans appear
    /// as their stages complete (and require the `obs` feature, on by
    /// default), so read it after the terminal outcome for the full
    /// breakdown: queue wait, micro-batch linger, cache probe, arena
    /// build, per-unit solves, and delivery.
    pub fn trace(&self) -> Option<TicketTrace> {
        self.trace.snapshot()
    }

    /// Requests cancellation of this job (cooperative and sticky): the
    /// engine stops scheduling its units at the next unit boundary, the
    /// batcher refuses to batch it if still queued, and the ticket's
    /// terminal state becomes [`TicketOutcome::Aborted`] with
    /// [`AbortReason::Cancelled`]. Slices already streamed stay valid;
    /// in-flight events are dropped. Callable from any thread (the
    /// token is shared), any number of times.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of this request's cancellation token — e.g. to hand a
    /// watchdog thread the means to cancel without owning the ticket.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks for the next completed slice. `None` once the job reached
    /// its terminal state (inspect via [`Self::outcome_ref`], or drain
    /// with [`Self::outcome`] / [`Self::wait`]) — or if the service
    /// died before finishing the job. After [`Self::cancel`], returns
    /// `None` immediately and drops any straggler slices.
    pub fn next_slice(&mut self) -> Option<StreamedSlice> {
        loop {
            if self.outcome.is_some() {
                return None;
            }
            match self.rx.recv() {
                Ok(TicketEvent::Slice(slice)) => {
                    if self.cancel.is_cancelled() {
                        // Lost interest: drop the slice, keep draining
                        // toward the terminal Aborted event.
                        continue;
                    }
                    return Some(slice);
                }
                Ok(TicketEvent::Done(result)) => {
                    self.outcome = Some(self.resolve_done(result));
                    return None;
                }
                Ok(TicketEvent::Aborted(reason)) => {
                    self.outcome = Some(TicketOutcome::Aborted(reason));
                    return None;
                }
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking variant of [`Self::next_slice`]: `None` when no
    /// slice has completed *yet* (distinguish via [`Self::is_done`]).
    pub fn try_next_slice(&mut self) -> Option<StreamedSlice> {
        loop {
            if self.outcome.is_some() {
                return None;
            }
            match self.rx.try_recv() {
                Ok(TicketEvent::Slice(slice)) => {
                    if self.cancel.is_cancelled() {
                        continue;
                    }
                    return Some(slice);
                }
                Ok(TicketEvent::Done(result)) => {
                    self.outcome = Some(self.resolve_done(result));
                    return None;
                }
                Ok(TicketEvent::Aborted(reason)) => {
                    self.outcome = Some(TicketOutcome::Aborted(reason));
                    return None;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// Cancellation beats a ready result: a `Done` landing on a
    /// cancelled ticket resolves Aborted (the computation may have been
    /// kept alive by a duplicate; *this* consumer said stop).
    fn resolve_done(&self, result: Arc<JobResult>) -> TicketOutcome {
        if self.cancel.is_cancelled() {
            TicketOutcome::Aborted(AbortReason::Cancelled)
        } else {
            TicketOutcome::Completed(result)
        }
    }

    /// `true` once the job reached its terminal state (completed or
    /// aborted).
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The terminal state observed so far, if any (never blocks).
    pub fn outcome_ref(&self) -> Option<&TicketOutcome> {
        self.outcome.as_ref()
    }

    /// Drains remaining slices and returns the terminal outcome.
    ///
    /// # Panics
    /// If the service terminated without resolving this job (batcher
    /// thread died) — the one state with nothing truthful to return.
    pub fn outcome(mut self) -> TicketOutcome {
        while self.next_slice().is_some() {}
        self.outcome.expect("service terminated before resolving this job")
    }

    /// Drains remaining slices and returns the assembled result.
    ///
    /// # Panics
    /// If the job was aborted (use [`Self::outcome`] when cancellation
    /// or deadlines are in play), or if the service terminated without
    /// completing it.
    pub fn wait(self) -> Arc<JobResult> {
        match self.outcome() {
            TicketOutcome::Completed(result) => result,
            TicketOutcome::Aborted(reason) => {
                panic!("job aborted ({reason}) — use Ticket::outcome to observe aborts")
            }
        }
    }

    /// Drains the whole stream, returning every slice in *arrival*
    /// order alongside the assembled result — the convenient shape for
    /// tests and latency probes. Grid order is `slice_index` order.
    ///
    /// # Panics
    /// As [`Self::wait`].
    pub fn collect(mut self) -> (Vec<StreamedSlice>, Arc<JobResult>) {
        let mut slices = Vec::new();
        while let Some(slice) = self.next_slice() {
            slices.push(slice);
        }
        match self.outcome.expect("service terminated before resolving this job") {
            TicketOutcome::Completed(result) => (slices, result),
            TicketOutcome::Aborted(reason) => {
                panic!("job aborted ({reason}) — use Ticket::outcome to observe aborts")
            }
        }
    }
}
