//! Size-based backend dispatch for served traffic.
//!
//! The pipeline has three ways to answer one `(complex, dimension)`
//! unit, with wildly different cost envelopes:
//!
//! | backend            | cost in `n = |S_k|`        | sweet spot        |
//! |--------------------|----------------------------|-------------------|
//! | statevector QPE    | exponential (gate-level)   | tiny, validation  |
//! | dense eigensolve   | `O(n³)`, tiny constants    | small             |
//! | sparse Lanczos     | matvec-only, `O(nnz · n)`  | large             |
//!
//! A serving mix contains all three sizes at once — sliding-window
//! attractors are small, re-analysis sweeps at large ε are not — so the
//! service routes **per unit**, not per job: small complexes stop
//! paying CSR assembly + Lanczos setup, large ones never densify, and
//! an optional gate-level tier keeps the smallest units
//! hardware-faithful. The policy type itself
//! ([`DispatchPolicy`]) lives in `qtda_core::pipeline` so the one-shot
//! pipeline, the batch engine, and this service all route identically;
//! this module re-exports it and provides the serving presets.
//!
//! Routing depends only on `|S_k|` — a pure function of job content —
//! so dispatch never threatens the bit-identical serving contract:
//! results depend on the policy, not on timing, workers, or batch
//! composition.

pub use qtda_core::pipeline::{BackendKind, DispatchPolicy};

use qtda_core::pipeline::DEFAULT_SPARSE_THRESHOLD;

/// The serving default: the classic dense/sparse split at the
/// pipeline's [`DEFAULT_SPARSE_THRESHOLD`], statevector tier disabled.
/// Identical routing to a job-level `sparse_threshold`, made explicit.
pub fn serving_policy() -> DispatchPolicy {
    DispatchPolicy::from_sparse_threshold(DEFAULT_SPARSE_THRESHOLD)
}

/// A validation-grade policy: units with `|S_k| ≤ statevector_max` run
/// the full Fig. 6 gate-level circuit (exponential — keep this small,
/// ≤ 8 is safe), the rest split dense/sparse as in [`serving_policy`].
pub fn validating_policy(statevector_max: usize) -> DispatchPolicy {
    DispatchPolicy { statevector_max, sparse_min: DEFAULT_SPARSE_THRESHOLD }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_policy_matches_job_level_threshold_routing() {
        let policy = serving_policy();
        assert_eq!(policy.choose(DEFAULT_SPARSE_THRESHOLD - 1), BackendKind::DenseEigen);
        assert_eq!(policy.choose(DEFAULT_SPARSE_THRESHOLD), BackendKind::SparseLanczos);
        assert_eq!(policy.choose(1), BackendKind::DenseEigen, "no statevector tier by default");
    }

    #[test]
    fn validating_policy_adds_a_gate_level_tier() {
        let policy = validating_policy(6);
        assert_eq!(policy.choose(1), BackendKind::Statevector);
        assert_eq!(policy.choose(6), BackendKind::Statevector);
        assert_eq!(policy.choose(7), BackendKind::DenseEigen);
        assert_eq!(policy.choose(DEFAULT_SPARSE_THRESHOLD), BackendKind::SparseLanczos);
    }
}
