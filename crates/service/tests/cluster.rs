//! The sharded backend behind the service front door:
//!
//! * `shards = 2` answers are **bit-identical** to `shards = 1` for
//!   the same submissions — the cluster tier cannot reach the numbers.
//! * A traced ticket's journal chains `submit → shard_route →
//!   unit_done` through the one flight recorder.
//! * `/metrics` carries every shard's engine series as `shard="i"`
//!   labels in ONE registry — no second scrape endpoint, no parallel
//!   stat structs — while a `shards = 1` service keeps the exact
//!   unlabeled exposition it always had.
//! * `/ready` flips to 503 the moment any shard thread dies.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{BettiJob, EngineConfig, JobResult};
use qtda_service::{EventKind, QtdaService, ServiceConfig, Telemetry, Ticket, TicketOutcome};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SEED: u64 = 0xC1_5E2;

fn config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        engine: EngineConfig {
            workers: 2,
            batch_seed: BATCH_SEED,
            cache_capacity: 8,
            ..EngineConfig::default()
        },
        shards,
        max_batch_size: 4,
        max_linger: Duration::from_millis(5),
        ..ServiceConfig::default()
    }
}

/// A small job whose ε-grid varies with `tag`, so fingerprints spread
/// across the ring instead of collapsing onto one shard.
fn job(tag: usize) -> BettiJob {
    let mut rng = StdRng::seed_from_u64(17 + tag as u64 % 3);
    let cloud = synthetic::circle(8, 1.0, 0.05, &mut rng);
    let mut job = BettiJob::new(cloud, vec![0.6 + 0.01 * (tag % 16) as f64]);
    job.estimator =
        EstimatorConfig { precision_qubits: 4, shots: 600, ..EstimatorConfig::default() };
    job
}

fn results_of(tickets: Vec<Ticket>) -> Vec<Arc<JobResult>> {
    tickets
        .into_iter()
        .map(|t| match t.outcome() {
            TicketOutcome::Completed(result) => result,
            TicketOutcome::Aborted(reason) => panic!("unexpected abort: {reason:?}"),
        })
        .collect()
}

fn assert_results_identical(a: &[Arc<JobResult>], b: &[Arc<JobResult>]) {
    assert_eq!(a.len(), b.len(), "result counts differ");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.fingerprint, rb.fingerprint, "job {i} fingerprints");
        assert_eq!(ra.job_seed, rb.job_seed, "job {i} job seeds");
        assert_eq!(ra.slices.len(), rb.slices.len(), "job {i} slice counts");
        for (sa, sb) in ra.slices.iter().zip(&rb.slices) {
            assert_eq!(sa.seed, sb.seed, "job {i} slice seeds at ε = {}", sa.epsilon);
            assert_eq!(sa.classical, sb.classical, "job {i} classical Betti numbers");
            assert_eq!(sa.estimates.len(), sb.estimates.len(), "job {i} estimate counts");
            for (ea, eb) in sa.estimates.iter().zip(&sb.estimates) {
                assert_eq!(ea.p_zero_exact.to_bits(), eb.p_zero_exact.to_bits(), "job {i} p(0)");
                assert_eq!(ea.p_zero_sampled.to_bits(), eb.p_zero_sampled.to_bits(), "job {i} p̂");
                assert_eq!(ea.raw.to_bits(), eb.raw.to_bits(), "job {i} raw");
                assert_eq!(ea.corrected.to_bits(), eb.corrected.to_bits(), "job {i} corrected");
            }
        }
    }
}

/// Minimal blocking HTTP/1.1 GET: returns `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: qtda\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().expect("status line").to_string(), body.to_string())
}

/// The whole point of the tier: turning `shards` up must never change
/// a single result bit, because seeds derive from content, not
/// placement. Same submissions → byte-for-byte equal outcomes.
#[test]
fn sharded_service_answers_are_bit_identical_to_single_engine_service() {
    let single = QtdaService::new(config(1));
    let sharded = QtdaService::new(config(2));
    assert!(single.cluster().is_none(), "shards = 1 keeps the plain engine backend");
    assert!(sharded.cluster().is_some(), "shards = 2 runs the cluster backend");

    let submit_all = |service: &QtdaService| -> Vec<Ticket> {
        (0..12).map(|tag| service.submit(job(tag)).expect("submit")).collect()
    };
    let reference = results_of(submit_all(&single));
    let clustered = results_of(submit_all(&sharded));
    assert_results_identical(&reference, &clustered);

    // Warm resubmission (cache hits on whichever shard owns each key)
    // is bit-identical too.
    let warm = results_of(submit_all(&sharded));
    assert_results_identical(&reference, &warm);

    single.shutdown();
    sharded.shutdown();
}

/// A traced ticket's journal shows the full path through the tier:
/// accepted at the front door, routed onto a shard, units completed —
/// all joined on the one `(ticket, fingerprint)` identity.
#[test]
fn journal_chains_submit_route_and_unit_done_for_a_ticket() {
    let service = QtdaService::with_telemetry(config(2), Telemetry::with_flight_recorder(1 << 12));
    let tickets: Vec<Ticket> =
        (0..6).map(|tag| service.submit(job(tag)).expect("submit")).collect();
    let probe_id = tickets[0].id();
    for ticket in tickets {
        let _ = ticket.outcome();
    }

    let recorder = service.flight_recorder().expect("recorder enabled").clone();
    let chain = recorder.events_for_ticket(probe_id);
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert_eq!(kinds.first(), Some(&EventKind::Submit), "chain starts at submission");
    let route = kinds
        .iter()
        .position(|&k| k == EventKind::ShardRoute)
        .expect("the cluster tier stamps a shard_route hop");
    let unit =
        kinds.iter().rposition(|&k| k == EventKind::UnitDone).expect("estimation units journalled");
    assert!(route < unit, "routing precedes the unit work it placed: {kinds:?}");
    let detail = &chain[route].detail;
    assert!(detail.starts_with("shard="), "route detail names the shard: {detail:?}");

    // The JSONL dump for the ticket carries the same chain.
    let dump = recorder.dump_ticket_jsonl(probe_id);
    assert!(dump.contains("\"kind\":\"shard_route\""), "shard_route in /events.jsonl: {dump}");

    service.shutdown();
}

/// Every shard's engine metrics land in ONE registry, distinguished
/// only by a `shard` label — scraped from the same `/metrics` endpoint
/// the single-engine service serves.
#[test]
fn metrics_exposition_labels_every_shard_in_one_registry() {
    let service = QtdaService::with_telemetry(config(2), Telemetry::with_flight_recorder(256));
    let server = service.serve_ops("127.0.0.1:0").expect("bind scrape server");
    let tickets: Vec<Ticket> =
        (0..10).map(|tag| service.submit(job(tag)).expect("submit")).collect();
    for ticket in tickets {
        let _ = ticket.outcome();
    }

    let (status, body) = http_get(server.local_addr(), "/metrics");
    assert!(status.contains("200"), "metrics scrape ok: {status}");
    for shard in ["0", "1"] {
        let label = format!("shard=\"{shard}\"");
        assert!(
            body.lines().any(|l| l.starts_with("qtda_engine_") && l.contains(&label)),
            "engine series for shard {shard} in the shared exposition"
        );
        assert!(
            body.contains(&format!("qtda_cluster_routed_total{{shard=\"{shard}\"}}")),
            "router counts submissions per shard"
        );
    }
    // Routing is exhaustive: per-shard routed counts sum to the trace.
    let routed: u64 = ["0", "1"]
        .iter()
        .map(|s| {
            service.registry().snapshot().counter_with("qtda_cluster_routed_total", &[("shard", s)])
        })
        .sum();
    assert_eq!(routed, 10, "every submission routed exactly once");

    drop(server);
    service.shutdown();
}

/// `shards = 1` (the default) keeps the single-engine backend and its
/// exact unlabeled exposition — existing dashboards see no change.
#[test]
fn single_shard_service_keeps_unlabeled_metrics() {
    let service = QtdaService::new(config(1));
    let tickets: Vec<Ticket> =
        (0..4).map(|tag| service.submit(job(tag)).expect("submit")).collect();
    for ticket in tickets {
        let _ = ticket.outcome();
    }
    let exposition = service.registry().snapshot().to_prometheus();
    assert!(exposition.lines().any(|l| l.starts_with("qtda_engine_")), "engine metrics present");
    assert!(
        !exposition.contains("shard=\""),
        "no shard labels leak into the single-engine exposition"
    );
    service.shutdown();
}

/// Readiness folds in shard liveness: kill one shard thread and the
/// same `/ready` endpoint that said 200 starts saying 503.
#[test]
fn dead_shard_flips_ready_to_503() {
    let service = QtdaService::with_telemetry(config(2), Telemetry::with_flight_recorder(256));
    let server = service.serve_ops("127.0.0.1:0").expect("bind scrape server");
    let addr = server.local_addr();

    let tickets: Vec<Ticket> =
        (0..4).map(|tag| service.submit(job(tag)).expect("submit")).collect();
    for ticket in tickets {
        let _ = ticket.outcome();
    }
    let (status, _) = http_get(addr, "/ready");
    assert!(status.contains("200"), "healthy cluster is ready: {status}");
    assert!(service.is_ready());

    service.cluster().expect("cluster backend").debug_kill_shard(1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.is_ready() {
        assert!(Instant::now() < deadline, "shard death must reach readiness");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _) = http_get(addr, "/ready");
    assert!(status.contains("503"), "a dead shard un-readies the service: {status}");

    drop(server);
    service.shutdown();
}
