//! The observability contract of the serving stack:
//!
//! * Telemetry is **invisible in results**: a service publishing into a
//!   live registry with ticket tracing on, one over a disabled
//!   registry, and one with defaults all produce answers bit-identical
//!   to a plain `BatchEngine::run_batch` of the same jobs and seed.
//! * One registry snapshot exposes the whole stack — `qtda_service_*`
//!   counters matching `ServiceStats`, per-class request-latency
//!   histograms, queue-wait histograms, and the owned engine's
//!   `qtda_engine_*` families — in Prometheus text form.
//! * Ticket traces break the serving path into stages: `queue_wait`,
//!   `linger`, `delivery` from the service, `cache_probe` /
//!   `arena_build` / `solve` from the engine.
//! * The queue-depth gauge returns to exactly zero once the service
//!   drains.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, JobResult};
use qtda_service::{MetricsRegistry, QtdaService, ServiceConfig, Telemetry, Ticket};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const BATCH_SEED: u64 = 0xB5EED;

fn small_jobs() -> Vec<BettiJob> {
    let mut rng = StdRng::seed_from_u64(41);
    let mut jobs = vec![
        BettiJob::new(synthetic::circle(10, 1.0, 0.02, &mut rng), vec![0.5, 0.8]),
        BettiJob::new(synthetic::two_clusters(5, 4.0, 0.4, &mut rng), vec![1.0, 1.4]),
    ];
    for job in &mut jobs {
        job.estimator =
            EstimatorConfig { precision_qubits: 5, shots: 1500, ..EstimatorConfig::default() };
    }
    jobs
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        engine: EngineConfig {
            workers: 2,
            batch_seed: BATCH_SEED,
            cache_capacity: 4,
            ..EngineConfig::default()
        },
        max_batch_size: 4,
        max_linger: Duration::from_millis(30),
        ..ServiceConfig::default()
    }
}

fn run_all(service: &QtdaService, jobs: &[BettiJob]) -> Vec<Arc<JobResult>> {
    let tickets: Vec<Ticket> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("submit")).collect();
    tickets.into_iter().map(Ticket::wait).collect()
}

fn assert_bit_identical(results: &[Arc<JobResult>], reference: &[Arc<JobResult>], context: &str) {
    assert_eq!(results.len(), reference.len());
    for (got, want) in results.iter().zip(reference) {
        assert_eq!(got.fingerprint, want.fingerprint, "{context}: fingerprint");
        assert_eq!(got.job_seed, want.job_seed, "{context}: job seed");
        for (a, b) in got.features().iter().zip(want.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{context}: feature bits");
        }
    }
}

/// Telemetry observes; it never steers. Live registry + ticket traces,
/// disabled registry, and the default wiring all yield bit-identical
/// results — the pin that lets instrumentation ship inside the serving
/// path without a determinism caveat.
#[test]
fn telemetry_is_invisible_in_results() {
    let jobs = small_jobs();
    let reference = BatchEngine::new(service_config().engine).run_batch(&jobs);

    let plain = QtdaService::new(service_config());
    let got_plain = run_all(&plain, &jobs);
    plain.shutdown();
    assert_bit_identical(&got_plain, &reference, "default telemetry");

    let traced = QtdaService::with_telemetry(service_config(), Telemetry::with_ticket_traces());
    let got_traced = run_all(&traced, &jobs);
    traced.shutdown();
    assert_bit_identical(&got_traced, &reference, "live registry + traces");

    let disabled = QtdaService::with_telemetry(
        service_config(),
        Telemetry {
            registry: Arc::new(MetricsRegistry::disabled()),
            trace_tickets: false,
            events: None,
        },
    );
    let got_disabled = run_all(&disabled, &jobs);
    assert_bit_identical(&got_disabled, &reference, "disabled registry");
    // A disabled registry also reads all-zero stats — no partial
    // telemetry, and still the same answers.
    assert_eq!(disabled.stats().submitted, 0, "disabled registry counts nothing");
    disabled.shutdown();
}

/// One snapshot covers the stack: service counters agree with
/// `ServiceStats`, latency histograms carry per-class samples, the
/// engine's families are present, and the queue-depth gauge is back to
/// zero after the drain.
#[test]
fn registry_snapshot_exposes_service_and_engine_together() {
    let jobs = small_jobs();
    let service = QtdaService::with_telemetry(service_config(), Telemetry::default());
    let results = run_all(&service, &jobs);
    assert_eq!(results.len(), jobs.len());

    let stats = service.stats();
    let snap = service.registry().snapshot();
    assert_eq!(snap.counter_family("qtda_service_submitted_total"), stats.submitted);
    assert_eq!(snap.counter("qtda_service_completed_total"), stats.completed);
    assert_eq!(snap.counter("qtda_service_batches_formed_total"), stats.batches_formed);
    // The owned engine publishes into the same registry.
    assert_eq!(snap.counter("qtda_engine_jobs_served_total"), jobs.len() as u64);
    assert_eq!(snap.gauge("qtda_service_queue_depth"), 0, "drained queue reads zero depth");

    let exposition = snap.to_prometheus();
    assert!(
        exposition.contains("qtda_service_request_seconds_bucket{class=\"normal\",le=\"+Inf\"}"),
        "per-class latency histogram missing:\n{exposition}"
    );
    assert!(exposition.contains("qtda_service_queue_wait_seconds_count"));
    assert!(exposition.contains("qtda_engine_units_executed_total"));

    service.shutdown();
}

/// Every ticket's trace names the serving stages end to end. Compute
/// traffic shows the engine's arena build and solves; a repeat of the
/// same job is answered from the cache and must NOT record a solve.
#[cfg(feature = "obs")]
#[test]
fn ticket_traces_break_down_the_serving_path() {
    let jobs = small_jobs();
    let service = QtdaService::with_telemetry(service_config(), Telemetry::with_ticket_traces());

    let mut first = service.submit(jobs[0].clone()).expect("submit");
    while first.next_slice().is_some() {}
    let trace = first.trace().expect("tracing is on");
    for stage in ["queue_wait", "linger", "cache_probe", "arena_build", "solve", "delivery"] {
        assert!(
            trace.stage(stage).is_some(),
            "stage {stage} missing from trace:\n{}",
            trace.render()
        );
    }

    let repeat = service.submit(jobs[0].clone()).expect("submit repeat");
    let repeat = {
        let mut t = repeat;
        while t.next_slice().is_some() {}
        t
    };
    let trace = repeat.trace().expect("tracing is on");
    assert!(trace.stage("cache_probe").is_some(), "the probe itself is always traced");
    assert!(trace.stage("solve").is_none(), "a cache hit never solves:\n{}", trace.render());

    service.shutdown();
}

/// With tracing off (the default), tickets carry no trace at all — the
/// disabled tracer records nothing and snapshots to `None`.
#[test]
fn tracing_off_means_no_trace() {
    let jobs = small_jobs();
    let service = QtdaService::new(service_config());
    let mut ticket = service.submit(jobs[1].clone()).expect("submit");
    while ticket.next_slice().is_some() {}
    assert!(ticket.trace().is_none());
    service.shutdown();
}
