//! The ops-surface contract of the serving stack (PR 8 acceptance):
//!
//! * A live service is scrapeable over real TCP while serving traffic:
//!   `GET /metrics` returns well-formed Prometheus text (escaped
//!   labels and all), `/metrics.json` the same snapshot as JSON,
//!   `/health` stays 200, and `/ready` flips to 503 after shutdown —
//!   the probe outlives the service it watches.
//! * A rolling window over the service registry reports a p95 for
//!   `qtda_service_request_seconds{class=interactive}` that matches
//!   the trace of per-ticket latencies measured at the callsite, to
//!   within one histogram bucket width.
//! * An SLO on that family fires after an injected slow-solve
//!   regression breaches both burn-rate windows, surfaces as a
//!   `qtda_slo_firing` gauge in the same exposition, and clears at
//!   fast-window speed after recovery — fully deterministic (manual
//!   ticks are the clock; the test never sleeps).
//! * A cancelled ticket leaves a complete flight-recorder chain
//!   (`submit → cancel → abort`) joined by its ticket id, dumped as
//!   JSONL both on demand and automatically at the abort.
//! * The full ops surface — live registry, ticket traces, flight
//!   recorder, background window driver, and a scraper hammering the
//!   HTTP endpoint mid-batch — never changes result bits.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, JobResult};
use qtda_service::{
    EventKind, QosPolicy, QtdaService, RollingWindow, ServiceConfig, Slo, SloTracker, Telemetry,
    Ticket, TicketOutcome, WindowConfig, DEFAULT_LATENCY_BUCKETS,
};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SEED: u64 = 0x0B5;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        engine: EngineConfig {
            workers: 2,
            batch_seed: BATCH_SEED,
            cache_capacity: 8,
            ..EngineConfig::default()
        },
        max_batch_size: 4,
        max_linger: Duration::from_millis(5),
        ..ServiceConfig::default()
    }
}

/// A small job whose ε-grid varies with `tag`, so fingerprints differ
/// per submission and the cache does not collapse the whole trace.
fn job(tag: usize) -> BettiJob {
    let mut rng = StdRng::seed_from_u64(17 + tag as u64 % 3);
    let cloud = synthetic::circle(8, 1.0, 0.05, &mut rng);
    let mut job = BettiJob::new(cloud, vec![0.6 + 0.01 * (tag % 16) as f64]);
    job.estimator =
        EstimatorConfig { precision_qubits: 4, shots: 600, ..EstimatorConfig::default() };
    job
}

/// Minimal blocking HTTP/1.1 GET: returns `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: qtda\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().expect("status line").to_string(), body.to_string())
}

/// Every non-empty, non-comment exposition line must be
/// `name{optional labels} <float>` with a parseable value.
fn assert_valid_prometheus(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line without value: {line:?}");
        });
        assert!(value.parse::<f64>().is_ok(), "unparseable sample value in line {line:?}");
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in line {line:?}"
        );
        if let Some(rest) = name_part.split_once('{').map(|(_, r)| r) {
            assert!(rest.ends_with('}'), "unterminated label set in line {line:?}");
        }
    }
}

/// A live service under a deterministic Poisson-ish submission trace is
/// scrapeable over real TCP the whole time; `/ready` reports 503 once
/// the service shuts down, from a server that outlives it.
#[test]
fn live_service_is_scrapeable_over_tcp_under_load() {
    let telemetry = Telemetry::with_flight_recorder(1 << 12);
    let service = Arc::new(QtdaService::with_telemetry(service_config(), telemetry));
    let server = service.serve_ops("127.0.0.1:0").expect("bind scrape server");
    let addr = server.local_addr();

    // Producer: 24 submissions with LCG-derived inter-arrival gaps and
    // priority classes — a deterministic stand-in for Poisson traffic.
    let producer = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let mut lcg: u64 = 0x9E3779B97F4A7C15;
            let mut tickets = Vec::new();
            for tag in 0..24 {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let class = match lcg >> 61 {
                    0 | 1 => QosPolicy::interactive(),
                    2..=5 => QosPolicy::normal(),
                    _ => QosPolicy::bulk(),
                };
                tickets.push(service.submit_with(job(tag), class).expect("submit"));
                std::thread::sleep(Duration::from_micros((lcg >> 48) % 3000));
            }
            for ticket in tickets {
                let _ = ticket.outcome();
            }
        })
    };

    // Concurrent scrapers while the trace is in flight: every response
    // is a complete, well-formed exposition (each scrape serializes one
    // registry snapshot — never a torn mix of two).
    let scrapers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let (status, body) = http_get(addr, "/metrics");
                    assert_eq!(status, "HTTP/1.1 200 OK");
                    assert_valid_prometheus(&body);
                    assert!(
                        body.contains("qtda_service_submitted_total"),
                        "service families present"
                    );
                }
            })
        })
        .collect();
    for scraper in scrapers {
        scraper.join().expect("scraper thread");
    }
    producer.join().expect("producer thread");

    // After the drain, the exposition carries the whole stack.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_valid_prometheus(&body);
    for family in [
        "qtda_service_submitted_total",
        "qtda_service_request_seconds_bucket",
        "qtda_service_queue_depth",
        "qtda_engine_jobs_served_total",
    ] {
        assert!(body.contains(family), "missing family {family}");
    }
    let (status, json) = http_get(addr, "/metrics.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(json.trim_start().starts_with('{'), "JSON exposition");
    assert!(json.contains("qtda_service_submitted_total"), "JSON carries the same families");

    let (status, body) = http_get(addr, "/health");
    assert_eq!((status.as_str(), body.as_str()), ("HTTP/1.1 200 OK", "ok\n"));
    let (status, _) = http_get(addr, "/ready");
    assert_eq!(status, "HTTP/1.1 200 OK", "ready while serving");

    // Shut the service down; the probe holds its own handle, so the
    // still-running server now answers 503.
    Arc::try_unwrap(service).ok().expect("sole owner").shutdown();
    let (status, _) = http_get(addr, "/ready");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable", "not ready after shutdown");
    let (status, _) = http_get(addr, "/health");
    assert_eq!(status, "HTTP/1.1 200 OK", "health is liveness, not readiness");
}

/// The rolling window's interpolated p95 for
/// `qtda_service_request_seconds{class=interactive}` agrees with the
/// per-ticket latencies measured at the callsite, to within one bucket
/// width of the default latency buckets.
#[test]
fn window_p95_matches_measured_ticket_latencies_within_one_bucket() {
    let telemetry = Telemetry::default();
    let registry = Arc::clone(&telemetry.registry);
    let service = QtdaService::with_telemetry(service_config(), telemetry);
    // The window baseline must predate the traffic it will measure.
    let window =
        RollingWindow::new(registry, WindowConfig { cadence: Duration::from_secs(1), slots: 60 });

    let mut measured: Vec<f64> = Vec::new();
    for tag in 0..20 {
        let started = Instant::now();
        let ticket = service.submit_with(job(tag), QosPolicy::interactive()).expect("submit");
        let _ = ticket.wait();
        measured.push(started.elapsed().as_secs_f64());
    }
    window.tick();

    let p95 = window
        .quantile(
            "qtda_service_request_seconds",
            &[("class", "interactive")],
            0.95,
            Duration::from_secs(1),
        )
        .expect("interactive latency recorded in the window");

    measured.sort_by(f64::total_cmp);
    let truth = measured[(0.95f64 * measured.len() as f64).ceil() as usize - 1];
    // Histogram quantiles are exact only up to bucket resolution, and
    // callsite timing brackets (slightly exceeds) the service's own
    // accepted→delivered measurement — allow one bucket on either side
    // of the bucket holding the ground truth.
    let bounds = DEFAULT_LATENCY_BUCKETS;
    let idx = bounds.iter().position(|&b| truth <= b).unwrap_or(bounds.len() - 1);
    let lo = if idx == 0 { 0.0 } else { bounds[idx - 1] };
    let hi = bounds[(idx + 1).min(bounds.len() - 1)];
    assert!(
        (lo..=hi).contains(&p95),
        "window p95 {p95} outside [{lo}, {hi}] around measured p95 {truth}"
    );
    service.shutdown();
}

/// An SLO over the service's own latency family fires only after an
/// injected slow-solve regression has breached both burn-rate windows,
/// surfaces in the scrape exposition as a `qtda_slo_firing` gauge, and
/// clears at fast-window speed once healthy traffic resumes. The clock
/// is manual ticks — no sleeps, bit-for-bit repeatable.
#[test]
fn slo_fires_on_injected_slow_solves_and_clears_after_recovery() {
    let telemetry = Telemetry::default();
    let registry = Arc::clone(&telemetry.registry);
    let service = QtdaService::with_telemetry(service_config(), telemetry);
    // The same sharded cell the service records into: identical family,
    // labels, and buckets resolve to one histogram.
    let latency = registry.histogram_with(
        "qtda_service_request_seconds",
        &[("class", "interactive")],
        &DEFAULT_LATENCY_BUCKETS,
    );

    let window = Arc::new(RollingWindow::new(
        Arc::clone(&registry),
        WindowConfig { cadence: Duration::from_secs(1), slots: 6 },
    ));
    let mut tracker = SloTracker::new(Arc::clone(&window), Arc::clone(&registry));
    tracker.track(
        Slo::latency_quantile(
            "interactive-p95",
            "qtda_service_request_seconds",
            &[("class", "interactive")],
            0.95,
            0.1,
        )
        .with_windows(Duration::from_secs(1), Duration::from_secs(6)),
    );

    let healthy_tick = |n: usize| {
        for _ in 0..n {
            for _ in 0..100 {
                latency.observe(0.002);
            }
            window.tick();
        }
    };
    let slow_tick = || {
        for _ in 0..20 {
            latency.observe(0.4);
        }
        window.tick();
    };

    healthy_tick(4);
    let status = &tracker.evaluate()[0];
    assert!(!status.firing, "healthy traffic never fires");

    // Injected slow solves: one bad tick breaches the fast window only.
    slow_tick();
    let status = &tracker.evaluate()[0];
    assert!(status.fast_breached && !status.slow_breached && !status.firing);

    // A second bad tick tips the slow window too — the alert fires and
    // shows up in the same exposition every scraper reads.
    slow_tick();
    let status = &tracker.evaluate()[0];
    assert!(status.firing, "sustained regression fires");
    let exposition = registry.snapshot().to_prometheus();
    assert!(
        exposition.contains("qtda_slo_firing{slo=\"interactive-p95\"} 1"),
        "firing gauge in exposition:\n{exposition}"
    );

    // Recovery: one healthy tick clears the fast window and the alert.
    healthy_tick(1);
    let status = &tracker.evaluate()[0];
    assert!(!status.firing, "alert clears at fast-window speed");
    assert!(status.slow_breached, "the slow window still remembers the incident");
    assert!(registry
        .snapshot()
        .to_prometheus()
        .contains("qtda_slo_firing{slo=\"interactive-p95\"} 0"));
    service.shutdown();
}

/// A ticket cancelled before the batcher reaches it leaves a complete
/// journal chain — submit, cancel, abort — joined by its ticket id,
/// available as JSONL on demand, via the auto-captured abort dump, and
/// over HTTP.
#[test]
fn cancelled_ticket_leaves_a_full_flight_record() {
    let service =
        QtdaService::with_telemetry(service_config(), Telemetry::with_flight_recorder(1 << 10));
    let server = service.serve_ops("127.0.0.1:0").expect("bind scrape server");

    let qos = QosPolicy::interactive();
    qos.cancel_token().cancel(); // dead on arrival — deterministically aborted
    let ticket = service.submit_with(job(0), qos).expect("submit");
    let id = ticket.id();
    assert!(id >= 1, "service ticket ids start at 1");
    match ticket.outcome() {
        TicketOutcome::Aborted(_) => {}
        TicketOutcome::Completed(_) => panic!("a pre-cancelled ticket cannot complete"),
    }

    let recorder = service.flight_recorder().expect("recorder configured").clone();
    let chain = recorder.events_for_ticket(id);
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert_eq!(kinds.first(), Some(&EventKind::Submit), "chain starts at submission");
    assert!(kinds.contains(&EventKind::Cancel), "cancellation stamped: {kinds:?}");
    assert_eq!(kinds.last(), Some(&EventKind::Abort), "chain ends at the abort");

    // The abort auto-captured its chain; both dumps carry the full
    // submit→abort story for this ticket, as line-delimited JSON.
    let auto = recorder.last_abort_dump().expect("abort auto-captures a dump");
    for needle in ["\"kind\":\"submit\"", "\"kind\":\"cancel\"", "\"kind\":\"abort\""] {
        assert!(auto.contains(needle), "auto dump misses {needle}:\n{auto}");
    }
    assert!(auto.contains(&format!("\"ticket\":{id}")));
    assert_eq!(auto, recorder.dump_ticket_jsonl(id), "auto dump is the ticket's chain");

    let (status, body) = http_get(server.local_addr(), "/abort.jsonl");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, auto, "HTTP serves the captured abort dump");
    let (status, body) = http_get(server.local_addr(), "/events.jsonl");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"kind\":\"submit\""), "journal dump over HTTP");
    service.shutdown();
}

/// The determinism pin, extended to the full ops surface: live
/// registry, ticket traces, flight recorder, a background window
/// driver, and a scraper hammering `/metrics` mid-batch — results stay
/// bit-identical to a bare engine run of the same jobs and seed.
#[test]
fn full_ops_surface_never_changes_result_bits() {
    let jobs: Vec<BettiJob> = (0..6).map(job).collect();
    let reference: Vec<Arc<JobResult>> = BatchEngine::new(service_config().engine).run_batch(&jobs);

    let mut telemetry = Telemetry::with_flight_recorder(1 << 12);
    telemetry.trace_tickets = true;
    let registry = Arc::clone(&telemetry.registry);
    let service = QtdaService::with_telemetry(service_config(), telemetry);
    let server = service.serve_ops("127.0.0.1:0").expect("bind scrape server");
    let addr = server.local_addr();
    let window = Arc::new(RollingWindow::new(
        registry,
        WindowConfig { cadence: Duration::from_millis(2), slots: 32 },
    ));
    let driver = window.spawn();

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (status, _) = http_get(addr, "/metrics");
                assert_eq!(status, "HTTP/1.1 200 OK");
            }
        })
    };

    let tickets: Vec<Ticket> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("submit")).collect();
    let results: Vec<Arc<JobResult>> = tickets.into_iter().map(Ticket::wait).collect();

    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread");
    drop(driver);
    service.shutdown();

    for (got, want) in results.iter().zip(&reference) {
        assert_eq!(got.fingerprint, want.fingerprint, "fingerprint");
        assert_eq!(got.job_seed, want.job_seed, "job seed");
        for (a, b) in got.features().iter().zip(want.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "feature bits under full ops surface");
        }
    }
}
