//! The streaming serving contract:
//!
//! * Streamed slices are **bit-identical** to `BatchEngine::run_batch`
//!   for the same jobs and batch seed, across 1/2/8 service workers and
//!   any micro-batch grouping.
//! * Slices arrive *before* the batch completes (first-slice latency <
//!   full-batch latency on a multi-job batch).
//! * The bounded queue exerts backpressure (`try_submit` →
//!   `Overloaded`) and `shutdown()` drains in-flight work.
//! * Size-based dispatch changes backends, never the classical truth.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, JobResult};
use qtda_service::{
    DispatchPolicy, QtdaService, ServiceConfig, StreamedSlice, SubmitError, Ticket,
};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SEED: u64 = 0x5EED;

/// A small mixed workload exercising both Laplacian paths and uneven
/// per-job unit counts.
fn mixed_jobs() -> Vec<BettiJob> {
    let mut rng = StdRng::seed_from_u64(77);
    let mut jobs = vec![
        BettiJob::new(synthetic::circle(12, 1.0, 0.02, &mut rng), vec![0.4, 0.55, 0.8]),
        BettiJob::new(synthetic::two_clusters(5, 4.0, 0.4, &mut rng), vec![1.0, 1.4]),
        BettiJob::new(synthetic::figure_eight(9, 1.0, 0.02, &mut rng), vec![0.5, 0.7, 0.9]),
        BettiJob::new(synthetic::uniform_cube(10, 2, &mut rng), vec![0.3, 0.6]),
    ];
    jobs[2].sparse_threshold = 8;
    for (i, job) in jobs.iter_mut().enumerate() {
        job.estimator =
            EstimatorConfig { precision_qubits: 5, shots: 2000, ..EstimatorConfig::default() };
        job.max_homology_dim = 1 + i % 2;
    }
    jobs
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig { workers, batch_seed: BATCH_SEED, cache_capacity: 0, ..EngineConfig::default() }
}

fn assert_streamed_matches_reference(
    streamed: &[StreamedSlice],
    final_result: &JobResult,
    reference: &JobResult,
    context: &str,
) {
    assert_eq!(streamed.len(), reference.slices.len(), "{context}: one event per slice");
    let mut ordered: Vec<&StreamedSlice> = streamed.iter().collect();
    ordered.sort_by_key(|s| s.slice_index);
    for (i, (s, r)) in ordered.iter().zip(&reference.slices).enumerate() {
        assert_eq!(s.slice_index, i, "{context}: every slice index exactly once");
        assert_eq!(s.result.seed, r.seed, "{context}: slice {i} seed");
        assert_eq!(s.result.classical, r.classical, "{context}: slice {i} classical");
        for (a, b) in s.result.features().iter().zip(r.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{context}: slice {i} features");
        }
    }
    assert_eq!(final_result.fingerprint, reference.fingerprint, "{context}: fingerprint");
    assert_eq!(final_result.job_seed, reference.job_seed, "{context}: job seed");
    for (a, b) in final_result.features().iter().zip(reference.features()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: final features");
    }
}

#[test]
fn streamed_results_are_bit_identical_to_run_batch_across_worker_counts() {
    let jobs = mixed_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    for workers in [1usize, 2, 8] {
        let service = QtdaService::new(ServiceConfig {
            engine: engine_config(workers),
            max_batch_size: jobs.len(),
            max_linger: Duration::from_millis(250),
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> =
            jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
        for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
            let (streamed, final_result) = ticket.collect();
            assert_streamed_matches_reference(
                &streamed,
                &final_result,
                reference,
                &format!("job {i}, {workers} workers"),
            );
        }
        service.shutdown();
    }
}

#[test]
fn micro_batch_grouping_is_unobservable_in_results() {
    let jobs = mixed_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    // Forcing one-job micro-batches regroups the work completely.
    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(2),
        max_batch_size: 1,
        max_linger: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
        let (streamed, final_result) = ticket.collect();
        assert_streamed_matches_reference(
            &streamed,
            &final_result,
            reference,
            &format!("job {i}, singleton micro-batches"),
        );
    }
    assert!(service.stats().batches_formed >= jobs.len() as u64);
    service.shutdown();
}

#[test]
fn first_slice_arrives_before_the_batch_completes() {
    // One micro-batch of several jobs on a single engine worker, whose
    // shared-counter schedule runs job 0's units before the last job's:
    // job 0's first slice must be *observable while the batch is still
    // computing*. A collect-then-return regression (slices only sent
    // once the whole batch finishes) would have the last job's slices
    // already buffered — and the batch marked complete — by the time
    // any slice can be read, so both assertions below discriminate.
    let jobs = mixed_jobs();
    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(1),
        max_batch_size: jobs.len(),
        max_linger: Duration::from_millis(250),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let submitted = Instant::now();
    let mut tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    let first_slice = tickets[0].next_slice().expect("at least one slice streams");
    let first_slice_latency = submitted.elapsed();
    assert_eq!(first_slice.result.estimates.len(), jobs[0].max_homology_dim + 1);
    let last = tickets.len() - 1;
    assert!(
        tickets[last].try_next_slice().is_none() && !tickets[last].is_done(),
        "job 0's first slice streamed while the batch was still computing — \
         the last job must have produced nothing yet"
    );
    assert_eq!(
        service.stats().completed,
        0,
        "no job may be complete when the first slice is observable"
    );
    let results: Vec<Arc<JobResult>> = tickets.into_iter().map(Ticket::wait).collect();
    let full_batch_latency = submitted.elapsed();
    assert!(results.iter().all(|r| !r.slices.is_empty()));
    assert!(
        first_slice_latency < full_batch_latency,
        "first slice ({first_slice_latency:?}) must beat the full batch \
         ({full_batch_latency:?})"
    );
    service.shutdown();
}

#[test]
fn bounded_queue_pushes_back_when_overloaded() {
    // A deliberately slow job occupies the batcher while the 1-slot
    // queue fills behind it.
    let mut rng = StdRng::seed_from_u64(5);
    let mut heavy = BettiJob::new(synthetic::circle(40, 1.0, 0.01, &mut rng), vec![0.45, 0.5]);
    heavy.estimator =
        EstimatorConfig { precision_qubits: 6, shots: 4000, ..EstimatorConfig::default() };
    let light = BettiJob::new(synthetic::two_clusters(4, 4.0, 0.3, &mut rng), vec![1.0]);

    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(1),
        max_batch_size: 1,
        max_linger: Duration::ZERO,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    let heavy_ticket = service.submit(heavy).expect("accepting the heavy job");
    // Wait until the batcher has picked the heavy job up, then park one
    // light job in the queue's only slot.
    let queued_ticket = loop {
        match service.try_submit(light.clone()) {
            Ok(ticket) => break ticket,
            Err(SubmitError::Overloaded(_)) => std::thread::yield_now(),
            Err(err) => panic!("unexpected submit error: {err}"),
        }
    };
    // The queue is now full and the batcher busy: submission must
    // report overload rather than buffer unboundedly.
    match service.try_submit(light.clone()) {
        Err(SubmitError::Overloaded(job)) => {
            assert_eq!(job.epsilons, light.epsilons, "the job is handed back for retry")
        }
        Ok(_) => panic!("queue of capacity 1 accepted a second queued job"),
        Err(err) => panic!("unexpected submit error: {err}"),
    }
    assert!(service.stats().rejected_overloaded >= 1);
    // Backpressure sheds load; it never corrupts accepted work.
    assert_eq!(heavy_ticket.wait().slices.len(), 2);
    assert_eq!(queued_ticket.wait().slices.len(), 1);
    service.shutdown();
}

#[test]
fn shutdown_drains_accepted_work() {
    let jobs = mixed_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(2),
        max_batch_size: jobs.len() + 8,
        // A linger far longer than the test: only shutdown's drain can
        // flush these.
        max_linger: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    service.shutdown();
    for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
        let (streamed, final_result) = ticket.collect();
        assert_streamed_matches_reference(
            &streamed,
            &final_result,
            reference,
            &format!("job {i} drained through shutdown"),
        );
    }
}

#[test]
fn dispatch_changes_backends_but_not_truth() {
    let jobs = mixed_jobs();
    // Statevector tier for the smallest units, sparse from 8 up: all
    // three backends are exercised by this workload.
    let policy = DispatchPolicy { statevector_max: 4, sparse_min: 8 };
    let dispatched_engine = EngineConfig { dispatch: Some(policy), ..engine_config(2) };
    let reference = BatchEngine::new(dispatched_engine).run_batch(&jobs);
    let baseline = BatchEngine::new(engine_config(2)).run_batch(&jobs);

    // Streaming under dispatch matches collect-mode under dispatch
    // bit for bit.
    let service = QtdaService::new(ServiceConfig {
        engine: dispatched_engine,
        max_batch_size: jobs.len(),
        max_linger: Duration::from_millis(250),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
        let (streamed, final_result) = ticket.collect();
        assert_streamed_matches_reference(
            &streamed,
            &final_result,
            reference,
            &format!("job {i} under dispatch"),
        );
    }
    service.shutdown();

    // Routing changes the sampling backend, never the classical truth.
    for (r, b) in reference.iter().zip(&baseline) {
        for (rs, bs) in r.slices.iter().zip(&b.slices) {
            assert_eq!(rs.classical, bs.classical, "classical truth is routing-free");
        }
    }
}

#[test]
fn deep_queues_dispatch_without_waiting_out_the_full_deadline() {
    // Seven jobs burst in against a micro-batch size of 8: the batch
    // gathers them instantly but never fills. With the adaptive linger
    // the 7/8 backlog shrinks the deadline to an eighth of
    // `max_linger`; without it, the almost-full batch waits out the
    // entire deadline with the engine idle.
    let mut rng = StdRng::seed_from_u64(91);
    let mut blocker = BettiJob::new(synthetic::circle(30, 1.0, 0.01, &mut rng), vec![0.4, 0.5]);
    blocker.estimator =
        EstimatorConfig { precision_qubits: 5, shots: 2000, ..EstimatorConfig::default() };
    let light: Vec<BettiJob> = (0..6)
        .map(|i| {
            BettiJob::new(
                synthetic::two_clusters(4, 4.0 + i as f64 * 0.1, 0.3, &mut rng),
                vec![1.0],
            )
        })
        .collect();
    let max_linger = Duration::from_millis(1500);
    let serve = |adaptive: bool| -> Duration {
        let service = QtdaService::new(ServiceConfig {
            engine: engine_config(1),
            max_batch_size: 8,
            max_linger,
            queue_capacity: 64,
            adaptive_linger: adaptive,
            ..ServiceConfig::default()
        });
        let start = Instant::now();
        let blocker_ticket = service.submit(blocker.clone()).expect("accepting");
        let tickets: Vec<_> =
            light.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
        for ticket in tickets {
            ticket.wait();
        }
        blocker_ticket.wait();
        let elapsed = start.elapsed();
        service.shutdown();
        elapsed
    };
    let adaptive = serve(true);
    assert!(
        adaptive < Duration::from_millis(1000),
        "deep queue must dispatch early: took {adaptive:?} against a {max_linger:?} linger"
    );
    let fixed = serve(false);
    assert!(
        fixed >= Duration::from_millis(1200),
        "control: the fixed linger should wait out most of its deadline, took {fixed:?}"
    );
    assert!(adaptive < fixed, "adaptive {adaptive:?} must beat fixed {fixed:?}");
}
