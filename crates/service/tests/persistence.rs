//! Persistence through the serving stack: a persistence job submitted
//! to the streaming service gets its persistent-Betti rows streamed
//! with every slice and its diagrams on the final result — bit-identical
//! to the raw engine across 1/2/8 workers, micro-batch groupings, and
//! the shards = 2 cluster path.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, JobResult};
use qtda_service::{QtdaService, ServiceConfig, StreamedSlice};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const BATCH_SEED: u64 = 0x9E25;

/// A persistence workload over both Laplacian paths: ascending grids,
/// both homology depths, one job forced sparse — plus one plain job
/// riding along to pin that the mode never leaks across tickets.
fn persistence_jobs() -> Vec<BettiJob> {
    let mut rng = StdRng::seed_from_u64(88);
    let mut jobs = vec![
        BettiJob::new(synthetic::circle(12, 1.0, 0.02, &mut rng), vec![0.4, 0.55, 0.8])
            .with_persistence(),
        BettiJob::new(synthetic::uniform_cube(10, 2, &mut rng), vec![0.2, 0.4, 0.6])
            .with_persistence(),
        BettiJob::new(synthetic::figure_eight(9, 1.0, 0.02, &mut rng), vec![0.5, 0.7, 0.9])
            .with_persistence(),
        BettiJob::new(synthetic::two_clusters(5, 4.0, 0.4, &mut rng), vec![1.0, 1.4]),
    ];
    jobs[2].sparse_threshold = 8;
    for (i, job) in jobs.iter_mut().enumerate() {
        job.estimator =
            EstimatorConfig { precision_qubits: 5, shots: 2000, ..EstimatorConfig::default() };
        job.max_homology_dim = 1 + i % 2;
    }
    jobs
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig { workers, batch_seed: BATCH_SEED, cache_capacity: 0, ..EngineConfig::default() }
}

fn assert_persistence_streams_match(
    streamed: &[StreamedSlice],
    final_result: &JobResult,
    reference: &JobResult,
    context: &str,
) {
    assert_eq!(final_result.fingerprint, reference.fingerprint, "{context}: fingerprint");
    assert_eq!(streamed.len(), reference.slices.len(), "{context}: one event per slice");
    let mut ordered: Vec<&StreamedSlice> = streamed.iter().collect();
    ordered.sort_by_key(|s| s.slice_index);
    for (i, (s, r)) in ordered.iter().zip(&reference.slices).enumerate() {
        assert_eq!(s.slice_index, i, "{context}: every slice index exactly once");
        assert_eq!(s.result.persistence, r.persistence, "{context}: streamed rows, slice {i}");
        for (a, b) in s.result.features().iter().zip(r.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{context}: slice {i} features");
        }
    }
    for (f, r) in final_result.slices.iter().zip(&reference.slices) {
        assert_eq!(f.persistence, r.persistence, "{context}: final rows at ε = {}", f.epsilon);
    }
    assert_eq!(final_result.diagrams, reference.diagrams, "{context}: diagrams");
}

#[test]
fn persistence_streams_bit_identical_to_the_engine_across_worker_counts() {
    let jobs = persistence_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    assert!(reference[3].diagrams.is_none(), "the plain job rides along without payloads");
    for workers in [1usize, 2, 8] {
        let service = QtdaService::new(ServiceConfig {
            engine: engine_config(workers),
            max_batch_size: jobs.len(),
            max_linger: Duration::from_millis(250),
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> =
            jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
        for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
            let (streamed, final_result) = ticket.collect();
            assert_persistence_streams_match(
                &streamed,
                &final_result,
                reference,
                &format!("job {i}, {workers} workers"),
            );
        }
        service.shutdown();
    }
}

#[test]
fn sharded_cluster_serves_identical_persistence_payloads() {
    let jobs = persistence_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(2),
        max_batch_size: jobs.len(),
        max_linger: Duration::from_millis(250),
        queue_capacity: 64,
        shards: 2,
        ..ServiceConfig::default()
    });
    assert!(service.cluster().is_some(), "shards = 2 routes through the cluster backend");
    let tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
        let (streamed, final_result) = ticket.collect();
        assert_persistence_streams_match(
            &streamed,
            &final_result,
            reference,
            &format!("job {i}, 2 shards"),
        );
    }
    service.shutdown();
}

#[test]
fn singleton_micro_batches_do_not_perturb_persistence() {
    let jobs = persistence_jobs();
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    let service = QtdaService::new(ServiceConfig {
        engine: engine_config(2),
        max_batch_size: 1,
        max_linger: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        jobs.iter().map(|j| service.submit(j.clone()).expect("accepting")).collect();
    for ((i, ticket), reference) in tickets.into_iter().enumerate().zip(&reference) {
        let (streamed, final_result) = ticket.collect();
        assert_persistence_streams_match(
            &streamed,
            &final_result,
            reference,
            &format!("job {i}, singleton micro-batches"),
        );
    }
    service.shutdown();
}
