//! The QoS serving contract:
//!
//! * `Ticket::cancel()` and an expired deadline both terminate a
//!   streamed job with an `Aborted` terminal state — across 1/2/8
//!   engine workers — with **no cache poisoning** (a resubmit computes
//!   the full, bit-identical result from scratch) and the job's
//!   filtration arena freed (`arena_bytes_live` back to zero).
//! * Completed results under priority scheduling are **bit-identical**
//!   to FIFO `run_batch` at 1/2/8 workers: priorities shape when units
//!   run, never what they compute.
//! * Bulk jobs still complete under sustained Interactive load (the
//!   submission queue's bounded bypass).
//! * An Interactive request closes a micro-batch early instead of
//!   waiting out the linger deadline.
//! * A job cancelled before any unit runs registers **no doorkeeper
//!   sighting**: cancel-then-resubmit still takes exactly two real
//!   sightings to admit the fingerprint into the LRU.

use qtda_core::estimator::EstimatorConfig;
use qtda_engine::{
    AbortReason, BatchEngine, BettiJob, EngineConfig, JobOutcome, JobRequest, QosPolicy,
};
use qtda_service::{QtdaService, ServiceConfig, TicketOutcome};
use qtda_tda::point_cloud::{synthetic, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SEED: u64 = 0x5EED;

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig { workers, batch_seed: BATCH_SEED, cache_capacity: 0, ..EngineConfig::default() }
}

/// A job with enough `(ε, dim)` units (and enough work per unit) that a
/// cancellation issued after its first slice always lands while units
/// are still outstanding. The ε grid straddles the 32-gon's chord-birth
/// thresholds (2·sin(kπ/32) ≈ 0.39, 0.58, 0.77, 0.94, 1.11), so every
/// slice activates a distinct simplex prefix — the engine's per-job
/// spectrum share cannot collapse the later units into cheap reuse
/// hits, which would let the whole job finish before the cancel lands.
fn heavy_job(seed: u64) -> BettiJob {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut job = BettiJob::new(
        synthetic::circle(32, 1.0, 0.01, &mut rng),
        vec![0.3, 0.5, 0.7, 0.85, 1.0, 1.2],
    );
    job.max_homology_dim = 2;
    job.estimator =
        EstimatorConfig { precision_qubits: 6, shots: 8000, ..EstimatorConfig::default() };
    job
}

fn light_job(seed: u64) -> BettiJob {
    let mut rng = StdRng::seed_from_u64(seed);
    BettiJob::new(synthetic::two_clusters(4, 4.0, 0.3, &mut rng), vec![1.0])
}

fn service(workers: usize, max_batch: usize) -> QtdaService {
    QtdaService::new(ServiceConfig {
        engine: engine_config(workers),
        max_batch_size: max_batch,
        max_linger: Duration::from_millis(250),
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
}

/// `Ticket::cancel` terminates a streamed job with `Aborted`, skips its
/// remaining units, frees its arena, and leaves the cache clean: the
/// same job resubmitted afterwards computes from scratch, bit-identical
/// to a fresh engine.
#[test]
fn cancel_terminates_streamed_job_without_poisoning_cache_or_leaking_arenas() {
    let cancelled_job = heavy_job(1);
    let companion = light_job(2);
    let reference_cancelled = BatchEngine::new(engine_config(1)).run_job(&cancelled_job);
    let reference_companion = BatchEngine::new(engine_config(1)).run_job(&companion);
    for workers in [1usize, 2, 8] {
        // Cache ON: the poisoning check needs one.
        let service = QtdaService::new(ServiceConfig {
            engine: EngineConfig { cache_capacity: 64, ..engine_config(workers) },
            max_batch_size: 2,
            max_linger: Duration::from_millis(250),
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let mut ticket = service.submit(cancelled_job.clone()).expect("accepting");
        let companion_ticket = service.submit(companion.clone()).expect("accepting");
        let first = ticket.next_slice().expect("at least one slice streams before the cancel");
        assert!(first.slice_index < cancelled_job.epsilons.len());
        ticket.cancel();
        match ticket.outcome() {
            TicketOutcome::Aborted(AbortReason::Cancelled) => {}
            other => panic!("{workers} workers: expected Aborted(Cancelled), got {other:?}"),
        }
        // The companion shares the micro-batch and must be untouched.
        let companion_result = companion_ticket.wait();
        for (a, b) in companion_result.features().iter().zip(reference_companion.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{workers} workers: companion corrupted");
        }
        let stats = service.engine().stats();
        assert_eq!(stats.arena_bytes_live, 0, "{workers} workers: abort leaked an arena");
        assert_eq!(stats.jobs_cancelled, 1, "{workers} workers");
        // No cache poisoning: the resubmit recomputes the whole job and
        // matches the FIFO reference bit for bit. (A poisoned entry
        // would either hit with partial slices or alter results.)
        let hits_before = stats.cache_hits;
        let resubmit =
            service.submit(cancelled_job.clone()).expect("accepting the resubmit").wait();
        assert_eq!(resubmit.slices.len(), cancelled_job.epsilons.len());
        for (a, b) in resubmit.features().iter().zip(reference_cancelled.features()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{workers} workers: resubmit diverged");
        }
        assert_eq!(
            service.engine().stats().cache_hits,
            hits_before,
            "{workers} workers: nothing of the cancelled job may be served from cache"
        );
        service.shutdown();
    }
}

/// A deadline that expires mid-computation terminates the streamed job
/// with `Aborted(DeadlineExceeded)` at a unit boundary, freeing its
/// arena; one that expired while still queued never reaches the engine
/// at all.
#[test]
fn expired_deadline_terminates_streamed_job() {
    for workers in [1usize, 2, 8] {
        let service = service(workers, 2);
        // Mid-computation expiry: the job takes far longer than 40 ms.
        let qos = QosPolicy::default().with_deadline_in(Duration::from_millis(40));
        let ticket = service.submit_with(heavy_job(3), qos).expect("accepting");
        match ticket.outcome() {
            TicketOutcome::Aborted(AbortReason::DeadlineExceeded) => {}
            other => panic!("{workers} workers: expected DeadlineExceeded, got {other:?}"),
        }
        // The expiry is counted when the batcher delivers outcomes,
        // which can trail the ticket's streamed abort by a moment —
        // poll briefly instead of racing it.
        let counted = Instant::now();
        while service.stats().deadline_expired < 1 {
            assert!(
                counted.elapsed() < Duration::from_secs(2),
                "{workers} workers: the expiry was never counted"
            );
            std::thread::yield_now();
        }
        // Outcome delivery happens after the engine run returned, and
        // the run's last unit freed the arena.
        assert_eq!(
            service.engine().stats().arena_bytes_live,
            0,
            "{workers} workers: abort leaked an arena"
        );
        // Dead on arrival: expired before the batcher ever popped it.
        // It still flows through the engine (deadlines are enforced at
        // unit boundaries), which skips every unit and aborts it.
        let dead_on_arrival =
            QosPolicy::bulk().with_deadline(Instant::now() - Duration::from_secs(1));
        let ticket = service.submit_with(light_job(4), dead_on_arrival).expect("accepting");
        match ticket.outcome() {
            TicketOutcome::Aborted(AbortReason::DeadlineExceeded) => {}
            other => panic!("{workers} workers: expected DeadlineExceeded, got {other:?}"),
        }
        service.shutdown();
    }
}

/// Best-effort deadlines never discard a ready answer: a request whose
/// result already sits in the LRU cache is served — for free — even if
/// its deadline expired while it waited in the submission queue.
#[test]
fn expired_deadline_still_served_from_a_ready_cache_hit() {
    let service = QtdaService::new(ServiceConfig {
        engine: EngineConfig { cache_capacity: 16, ..engine_config(2) },
        max_batch_size: 4,
        max_linger: Duration::from_millis(50),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let job = light_job(9);
    // Prime the cache with a completed run of the same job.
    let reference = service.submit(job.clone()).expect("accepting").wait();
    // Same content, deadline already expired: the engine's cache-hit
    // path must deliver the completed result rather than aborting.
    let expired = QosPolicy::normal().with_deadline(Instant::now() - Duration::from_secs(1));
    match service.submit_with(job, expired).expect("accepting").outcome() {
        TicketOutcome::Completed(result) => {
            for (a, b) in result.features().iter().zip(reference.features()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hit must be the cached result");
            }
        }
        TicketOutcome::Aborted(reason) => {
            panic!("a ready cache hit was discarded by an expired deadline ({reason})")
        }
    }
    assert!(service.engine().stats().cache_hits >= 1, "the hit actually came from the cache");
    service.shutdown();
}

/// QoS determinism: a mixed-priority workload's completed results are
/// bit-identical to FIFO `run_batch` of the same jobs, at 1/2/8
/// workers — priority scheduling reorders units, never values.
#[test]
fn completed_results_under_priority_scheduling_match_fifo_run_batch() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut jobs = vec![
        BettiJob::new(synthetic::circle(12, 1.0, 0.02, &mut rng), vec![0.4, 0.55, 0.8]),
        BettiJob::new(synthetic::two_clusters(5, 4.0, 0.4, &mut rng), vec![1.0, 1.4]),
        BettiJob::new(synthetic::figure_eight(9, 1.0, 0.02, &mut rng), vec![0.5, 0.7, 0.9]),
        BettiJob::new(synthetic::uniform_cube(10, 2, &mut rng), vec![0.3, 0.6]),
    ];
    jobs[2].sparse_threshold = 8;
    for (i, job) in jobs.iter_mut().enumerate() {
        job.estimator =
            EstimatorConfig { precision_qubits: 5, shots: 2000, ..EstimatorConfig::default() };
        job.max_homology_dim = 1 + i % 2;
    }
    let classes = [
        QosPolicy::bulk(),
        QosPolicy::interactive(),
        QosPolicy::normal(),
        QosPolicy::interactive(),
    ];
    let reference = BatchEngine::new(engine_config(1)).run_batch(&jobs);
    for workers in [1usize, 2, 8] {
        // Direct engine path.
        let requests: Vec<JobRequest> = jobs
            .iter()
            .zip(&classes)
            .map(|(job, qos)| JobRequest::with_qos(job.clone(), qos.clone()))
            .collect();
        let outcomes = BatchEngine::new(engine_config(workers)).run_batch_qos(&requests);
        for (i, (outcome, reference)) in outcomes.iter().zip(&reference).enumerate() {
            let result = outcome.result().expect("no abort was requested");
            for (a, b) in result.features().iter().zip(reference.features()) {
                assert_eq!(a.to_bits(), b.to_bits(), "engine path, job {i}, {workers} workers");
            }
        }
        // Service path: same jobs submitted with their classes.
        let service = service(workers, jobs.len());
        let tickets: Vec<_> = jobs
            .iter()
            .zip(&classes)
            .map(|(job, qos)| service.submit_with(job.clone(), qos.clone()).expect("accepting"))
            .collect();
        for (i, (ticket, reference)) in tickets.into_iter().zip(&reference).enumerate() {
            let (streamed, result) = ticket.collect();
            assert_eq!(streamed.len(), reference.slices.len(), "job {i}, {workers} workers");
            for (a, b) in result.features().iter().zip(reference.features()) {
                assert_eq!(a.to_bits(), b.to_bits(), "service path, job {i}, {workers} workers");
            }
        }
        let stats = service.engine().stats();
        assert_eq!(stats.served_interactive, 2, "{workers} workers");
        assert_eq!(stats.served_normal, 1, "{workers} workers");
        assert_eq!(stats.served_bulk, 1, "{workers} workers");
        service.shutdown();
    }
}

/// Starvation resistance: one Bulk job submitted behind a standing wall
/// of Interactive traffic still completes — long before the interactive
/// flood ends — because the queue's bounded bypass reaches the tail at
/// least every `priority_bypass + 1` pops.
#[test]
fn bulk_completes_under_sustained_interactive_load() {
    const FLOOD: usize = 30;
    let service = Arc::new(QtdaService::new(ServiceConfig {
        engine: engine_config(1),
        max_batch_size: 1, // every pop is a batch: pop order is visible
        max_linger: Duration::from_millis(1),
        queue_capacity: 4, // keeps the producer refilling the queue
        priority_bypass: 4,
        ..ServiceConfig::default()
    }));
    // Park interactive work in every queue slot first, so the bulk job
    // is always contended.
    let mut flood_tickets = Vec::new();
    for i in 0..4 {
        flood_tickets.push(
            service
                .submit_with(light_job(100 + i), QosPolicy::interactive())
                .expect("accepting the initial flood"),
        );
    }
    let bulk_ticket =
        service.submit_with(heavy_job(5), QosPolicy::bulk()).expect("accepting the bulk job");
    // A producer keeps the interactive pressure up from another thread.
    let submitted = Arc::new(AtomicUsize::new(4));
    let producer = {
        let service = Arc::clone(&service);
        let submitted = Arc::clone(&submitted);
        std::thread::spawn(move || {
            let mut tickets = Vec::new();
            for i in 0..FLOOD {
                match service.submit_with(light_job(200 + i as u64), QosPolicy::interactive()) {
                    Ok(ticket) => {
                        submitted.fetch_add(1, Ordering::SeqCst);
                        tickets.push(ticket);
                    }
                    Err(_) => break, // shutdown raced — fine
                }
            }
            tickets
        })
    };
    let bulk_result = bulk_ticket.wait();
    assert_eq!(bulk_result.slices.len(), heavy_job(5).epsilons.len());
    let interactive_pending = FLOOD + 4 - submitted.load(Ordering::SeqCst).min(FLOOD + 4);
    let _ = interactive_pending;
    assert!(
        submitted.load(Ordering::SeqCst) < FLOOD + 4,
        "the bulk job must complete while interactive load is still arriving \
         (producer had already submitted everything)"
    );
    let flood_rest = producer.join().expect("producer thread");
    for ticket in flood_tickets.into_iter().chain(flood_rest) {
        ticket.wait();
    }
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("all ticket holders are done; the Arc must be unique"),
    }
}

/// Priority-aware lingering: an Interactive request closes its
/// micro-batch immediately, while a Normal request alone waits out the
/// (deliberately long, non-adaptive) linger deadline.
#[test]
fn interactive_requests_close_micro_batches_early() {
    let max_linger = Duration::from_millis(1200);
    let serve = |qos: QosPolicy| -> Duration {
        let service = QtdaService::new(ServiceConfig {
            engine: engine_config(1),
            max_batch_size: 8,
            max_linger,
            queue_capacity: 16,
            adaptive_linger: false,
            ..ServiceConfig::default()
        });
        let start = Instant::now();
        let ticket = service.submit_with(light_job(6), qos).expect("accepting");
        ticket.wait();
        let elapsed = start.elapsed();
        service.shutdown();
        elapsed
    };
    let interactive = serve(QosPolicy::interactive());
    assert!(
        interactive < Duration::from_millis(600),
        "interactive must close the batch early: took {interactive:?} against {max_linger:?}"
    );
    let normal = serve(QosPolicy::normal());
    assert!(
        normal >= Duration::from_millis(900),
        "control: a lone Normal request should wait out most of the linger, took {normal:?}"
    );
    assert!(interactive < normal);
}

/// Doorkeeper regression: a job cancelled before any unit runs must not
/// register a doorkeeper sighting — cancel-then-resubmit still takes
/// exactly two *real* sightings to admit the fingerprint into the LRU.
#[test]
fn cancelled_job_registers_no_doorkeeper_sighting() {
    let engine = BatchEngine::new(EngineConfig {
        cache_capacity: 8,
        cache_doorkeeper: true,
        batch_seed: BATCH_SEED,
        ..EngineConfig::default()
    });
    let job = light_job(7);
    // Cancelled before submission: every unit is skipped, nothing may
    // touch the cache — not even the doorkeeper's first-sighting set.
    let qos = QosPolicy::default();
    qos.cancel_token().cancel();
    let outcomes = engine.run_batch_qos(&[JobRequest::with_qos(job.clone(), qos)]);
    assert!(matches!(outcomes[0], JobOutcome::Aborted(AbortReason::Cancelled)));
    assert_eq!(engine.stats().units_executed, 0, "cancelled before any unit ran");
    // First real sighting: computed, remembered, not admitted.
    engine.run_job(&job);
    assert_eq!(engine.stats().cache_hits, 0);
    // Second real sighting: computed again, admitted. Were the cancel a
    // sighting, this lookup would already hit.
    engine.run_job(&job);
    assert_eq!(
        engine.stats().cache_hits,
        0,
        "a cancel-then-resubmit must still take two sightings to admit"
    );
    // Third: served from cache — the admission happened exactly then.
    engine.run_job(&job);
    assert_eq!(engine.stats().cache_hits, 1);
}

/// The ticket's cancellation token is shared: cancelling through a
/// clone (e.g. a watchdog) aborts the ticket exactly like
/// `Ticket::cancel`, even when the job was already finished computing —
/// cancellation is honoured at delivery.
#[test]
fn cancel_token_clone_aborts_even_a_finished_job() {
    let service = service(1, 1);
    let ticket = service.submit(light_job(8)).expect("accepting");
    let token = ticket.cancel_token();
    // Let the tiny job finish computing, then cancel before draining.
    std::thread::sleep(Duration::from_millis(150));
    token.cancel();
    match ticket.outcome() {
        TicketOutcome::Aborted(AbortReason::Cancelled) => {}
        other => panic!("expected Aborted(Cancelled) at delivery, got {other:?}"),
    }
    service.shutdown();
}

/// Empty-cloud sanity under QoS: priorities and deadlines on trivial
/// jobs neither wedge the queue nor change the trivial answers.
#[test]
fn trivial_jobs_flow_through_every_class() {
    let service = service(2, 4);
    let cloud = PointCloud::new(1, vec![0.0, 10.0]);
    let classes = [QosPolicy::interactive(), QosPolicy::normal(), QosPolicy::bulk()];
    let tickets: Vec<_> = classes
        .iter()
        .map(|qos| {
            service
                .submit_with(BettiJob::new(cloud.clone(), vec![0.5]), qos.clone())
                .expect("accepting")
        })
        .collect();
    for ticket in tickets {
        let result = ticket.wait();
        assert_eq!(result.slices[0].classical, vec![2, 0], "two isolated points");
    }
    let stats = service.stats();
    assert_eq!(
        (stats.submitted_interactive, stats.submitted_normal, stats.submitted_bulk),
        (1, 1, 1),
        "per-class submission counters"
    );
    service.shutdown();
}
