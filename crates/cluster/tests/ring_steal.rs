//! Property suite for the cluster's routing and stealing invariants:
//!
//! * **Ring balance** — max/min shard load ≤ 1.25 at 64 vnodes, for
//!   any shard count 2–8 and any key population.
//! * **Minimal remap** — growing N → N+1 shards moves at most
//!   `1/N + ε` of the keys, and every moved key lands on the *new*
//!   shard (old shards never trade keys between themselves).
//! * **Steal planning** — a steal takes whole queue positions only,
//!   caps at `ceil(len/2)` and `max_run`, prefers Interactive, and
//!   keeps FIFO order within a class.
//! * **Starvation** — a flooded shard's Bulk backlog completes via
//!   stealing while an Interactive job on an idle shard is served
//!   ahead of it.

use proptest::prelude::*;
use qtda_cluster::{plan_steal, ClusterConfig, ClusterEngine, HashRing};
use qtda_core::query::{Priority, QosPolicy};
use qtda_engine::batch::{EngineConfig, JobRequest, SliceEvent};
use qtda_engine::BettiJob;
use qtda_tda::point_cloud::PointCloud;

/// A deterministic, well-spread key population derived from one seed.
fn keys(seed: u64, n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64)
        .map(move |i| (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left((i % 63) as u32))
}

fn class_rank(p: Priority) -> usize {
    match p {
        Priority::Interactive => 0,
        Priority::Normal => 1,
        Priority::Bulk => 2,
    }
}

fn arb_priority() -> impl Strategy<Value = Priority> {
    (0usize..3).prop_map(|i| match i {
        0 => Priority::Interactive,
        1 => Priority::Normal,
        _ => Priority::Bulk,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ring_balance_stays_under_gate(shards in 2usize..=8, seed in any::<u64>()) {
        let ring = HashRing::with_default_vnodes(shards);
        let mut counts = vec![0u64; shards];
        for key in keys(seed, 8000) {
            counts[ring.route(key)] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        prop_assert!(min > 0, "every shard owns keys: {counts:?}");
        let ratio = max as f64 / min as f64;
        prop_assert!(ratio <= 1.25, "max/min = {ratio:.3} over gate at {shards} shards: {counts:?}");
    }

    #[test]
    fn growing_the_ring_remaps_minimally_and_only_to_the_new_shard(
        shards in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let before = HashRing::with_default_vnodes(shards);
        let after = HashRing::with_default_vnodes(shards + 1);
        let total = 8000usize;
        let mut moved = 0usize;
        for key in keys(seed, total) {
            let old = before.route(key);
            let new = after.route(key);
            if old != new {
                moved += 1;
                prop_assert_eq!(
                    new,
                    shards,
                    "a moved key must land on the shard that appeared, not shuffle among old ones"
                );
            }
        }
        let bound = 1.0 / shards as f64 + 0.05;
        let fraction = moved as f64 / total as f64;
        prop_assert!(
            fraction <= bound,
            "{moved}/{total} keys moved ({fraction:.3}) — over the 1/N+ε bound {bound:.3}"
        );
    }

    #[test]
    fn steal_plan_never_splits_and_respects_qos(
        classes in proptest::collection::vec(arb_priority(), 0..40),
        max_run in 1usize..=8,
    ) {
        let picks = plan_steal(&classes, max_run);

        // Size: ceil(len/2) capped at max_run (and trivially at len).
        let expected = classes.len().div_ceil(2).min(max_run);
        prop_assert_eq!(picks.len(), expected);

        // Whole positions only: distinct, in-range, ascending — a queue
        // entry (one job, one arena) is taken or left, never split.
        prop_assert!(picks.windows(2).all(|w| w[0] < w[1]), "ascending & distinct: {picks:?}");
        prop_assert!(picks.iter().all(|&i| i < classes.len()), "in range: {picks:?}");

        // QoS preference: every pick ranks at-or-before every non-pick
        // under (class rank, queue position) — Interactive first, FIFO
        // within a class.
        let picked = |i: usize| picks.contains(&i);
        for &p in &picks {
            for j in 0..classes.len() {
                if !picked(j) {
                    prop_assert!(
                        (class_rank(classes[p]), p) < (class_rank(classes[j]), j),
                        "picked {p} ({:?}) after leaving {j} ({:?})",
                        classes[p],
                        classes[j]
                    );
                }
            }
        }
    }
}

/// A tiny job whose route can be probed: `salt` perturbs one
/// coordinate, changing the fingerprint without changing the job's
/// size or cost meaningfully.
fn probe_job(salt: u64) -> BettiJob {
    let shift = salt as f64 * 1e-9;
    let mut coords = Vec::with_capacity(24);
    for i in 0..12 {
        let theta = 2.0 * std::f64::consts::PI * (i as f64) / 12.0;
        coords.push(theta.cos() + shift);
        coords.push(theta.sin());
    }
    BettiJob::new(PointCloud::new(2, coords), vec![0.6, 1.1])
}

/// Finds `n` distinct jobs the cluster's ring homes on `shard`.
fn jobs_homed_on(cluster: &ClusterEngine, shard: usize, n: usize) -> Vec<BettiJob> {
    let mut found = Vec::new();
    for salt in 0..10_000u64 {
        let job = probe_job(salt);
        if cluster.route_of(job.fingerprint()) == shard {
            found.push(job);
            if found.len() == n {
                return found;
            }
        }
    }
    panic!("could not find {n} jobs homed on shard {shard}");
}

/// Floods shard 0 with Bulk work while one Interactive job sits on
/// shard 1: the Bulk backlog must complete (rescued by stealing — at
/// least one steal recorded), and the Interactive job on the idle
/// shard must finish ahead of the flood's tail.
#[test]
fn flooded_shard_bulk_completes_via_stealing_without_starving_interactive() {
    let registry = std::sync::Arc::new(qtda_obs::metrics::MetricsRegistry::new());
    let recorder = std::sync::Arc::new(qtda_obs::events::FlightRecorder::new(4096));
    let cluster = ClusterEngine::with_observability(
        ClusterConfig {
            engine: EngineConfig { batch_seed: 0x57EA1, cache_capacity: 0, ..Default::default() },
            shards: 2,
            stealing: true,
            hot_threshold: 0,
            max_run: 1, // keep the backlog on the queue, stealable
            ..Default::default()
        },
        std::sync::Arc::clone(&registry),
        Some(std::sync::Arc::clone(&recorder)),
    );

    let bulk_jobs = jobs_homed_on(&cluster, 0, 8);
    let interactive_job = jobs_homed_on(&cluster, 1, 1).remove(0);

    let mut requests: Vec<JobRequest> =
        bulk_jobs.iter().map(|job| JobRequest::with_qos(job.clone(), QosPolicy::bulk())).collect();
    let interactive_index = requests.len();
    requests.push(JobRequest::with_qos(interactive_job, QosPolicy::interactive()));

    // Record the order in which jobs finish their last slice.
    let completion_order = std::sync::Mutex::new(Vec::new());
    let slice_counts = std::sync::Mutex::new(vec![0usize; requests.len()]);
    let outcomes = cluster.run_batch_streaming_qos(&requests, &|event| {
        if let SliceEvent::Slice { job_index, .. } = event {
            let mut counts = slice_counts.lock().expect("counts");
            counts[job_index] += 1;
            if counts[job_index] == 2 {
                completion_order.lock().expect("order").push(job_index);
            }
        }
    });

    // Everything completed — the flooded shard's Bulk work was not
    // starved.
    assert!(outcomes.iter().all(|o| o.result().is_some()), "all jobs complete");

    // The rescue actually happened through the stealing path.
    let steals: u64 = (0..2)
        .map(|i| {
            registry
                .snapshot()
                .counter_with("qtda_cluster_steals_total", &[("shard", &i.to_string())])
        })
        .sum();
    assert!(steals > 0, "the idle shard must have stolen from the flooded one");
    let steal_events =
        recorder.events().iter().filter(|e| e.kind == qtda_obs::events::EventKind::Steal).count();
    assert!(steal_events > 0, "steal hops are journalled");

    // The Interactive job on the idle shard finished ahead of the
    // flood's tail (its own shard served it first; stealing only
    // soaked up Bulk).
    let order = completion_order.into_inner().expect("order");
    let interactive_pos =
        order.iter().position(|&i| i == interactive_index).expect("interactive completed");
    let last_bulk_pos =
        order.iter().rposition(|&i| i != interactive_index).expect("bulk jobs completed");
    assert!(
        interactive_pos < last_bulk_pos,
        "interactive (pos {interactive_pos}) must not wait out the whole Bulk flood \
         (last at {last_bulk_pos}): order = {order:?}"
    );
}
