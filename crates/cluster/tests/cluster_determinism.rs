//! Bit-identity of the sharded tier: the N-shard answer must equal
//! the single-engine answer byte for byte — for N ∈ {1, 2, 8}, with
//! work stealing and hot-key replication enabled, across cold and
//! warm cache states, and against a one-shot pipeline replay.
//!
//! This is the cluster counterpart of
//! `crates/engine/tests/determinism.rs`, and it holds for the same
//! reason: every estimator seed derives from `(batch_seed, job
//! fingerprint, ε-index, dimension)`, so *which shard's engine*
//! computes a job cannot reach the numbers. Routing, stealing, and
//! replication shuffle threads and caches — never values.

use qtda_cluster::{ClusterConfig, ClusterEngine};
use qtda_core::estimator::{BettiEstimate, EstimatorConfig};
use qtda_core::query::BettiRequest;
use qtda_engine::{BatchEngine, BettiJob, EngineConfig, JobResult};
use qtda_tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const BATCH_SEED: u64 = 0xC1_05_7E;

/// A mixed workload exercising both homology dimensions, both solver
/// paths, and repeated fingerprints (hot-key promotion needs repeats).
fn mixed_jobs() -> Vec<BettiJob> {
    let mut rng = StdRng::seed_from_u64(90);
    let mut jobs = vec![
        BettiJob::new(synthetic::circle(12, 1.0, 0.02, &mut rng), vec![0.4, 0.55, 0.8]),
        BettiJob::new(synthetic::two_clusters(5, 4.0, 0.4, &mut rng), vec![1.0, 1.4]),
        BettiJob::new(synthetic::figure_eight(9, 1.0, 0.02, &mut rng), vec![0.5, 0.7, 0.9]),
        BettiJob::new(synthetic::circle(10, 1.0, 0.05, &mut rng), vec![0.6, 1.1]),
        BettiJob::new(synthetic::two_clusters(6, 3.0, 0.3, &mut rng), vec![0.9, 1.3]),
    ];
    jobs[2].sparse_threshold = 8;
    for (i, job) in jobs.iter_mut().enumerate() {
        job.estimator =
            EstimatorConfig { precision_qubits: 5, shots: 2000, ..EstimatorConfig::default() };
        job.max_homology_dim = 1 + i % 2;
    }
    // Repeats: the same content resubmitted (separate clones, same
    // fingerprint) so dedup, caching, and hot-key promotion all fire.
    jobs.push(jobs[0].clone());
    jobs.push(jobs[2].clone());
    jobs
}

fn assert_estimates_identical(a: &BettiEstimate, b: &BettiEstimate, context: &str) {
    assert_eq!(a.p_zero_exact.to_bits(), b.p_zero_exact.to_bits(), "{context}: p(0) exact");
    assert_eq!(a.p_zero_sampled.to_bits(), b.p_zero_sampled.to_bits(), "{context}: p̂(0)");
    assert_eq!(a.raw.to_bits(), b.raw.to_bits(), "{context}: raw");
    assert_eq!(a.corrected.to_bits(), b.corrected.to_bits(), "{context}: corrected");
    assert_eq!(a.q, b.q, "{context}: q");
    assert_eq!(a.shots, b.shots, "{context}: shots");
    assert_eq!(a.spurious_zeros, b.spurious_zeros, "{context}: spurious zeros");
}

fn assert_results_identical(label: &str, a: &[Arc<JobResult>], b: &[Arc<JobResult>]) {
    assert_eq!(a.len(), b.len(), "{label}: result counts differ");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.fingerprint, rb.fingerprint, "{label}: job {i} fingerprints");
        assert_eq!(ra.job_seed, rb.job_seed, "{label}: job {i} job seeds");
        assert_eq!(ra.slices.len(), rb.slices.len(), "{label}: job {i} slice counts");
        for (sa, sb) in ra.slices.iter().zip(&rb.slices) {
            assert_eq!(sa.seed, sb.seed, "{label}: job {i} slice seeds at ε = {}", sa.epsilon);
            assert_eq!(sa.classical, sb.classical, "{label}: job {i} classical");
            for (ea, eb) in sa.estimates.iter().zip(&sb.estimates) {
                assert_estimates_identical(ea, eb, &format!("{label}: job {i}"));
            }
        }
    }
}

/// The stress configuration: stealing on, aggressive replication, and
/// `max_run = 1` so backlog stays on the queues where thieves see it.
fn cluster(shards: usize) -> ClusterEngine {
    ClusterEngine::new(ClusterConfig {
        engine: EngineConfig { batch_seed: BATCH_SEED, cache_capacity: 64, ..Default::default() },
        shards,
        stealing: true,
        hot_threshold: 1,
        max_run: 1,
        ..Default::default()
    })
}

#[test]
fn sharded_answers_are_bit_identical_to_single_engine() {
    let jobs = mixed_jobs();
    let reference = BatchEngine::new(EngineConfig {
        batch_seed: BATCH_SEED,
        cache_capacity: 0, // always recompute — the pure answer
        workers: 1,
        ..Default::default()
    })
    .run_batch(&jobs);

    for shards in [1usize, 2, 8] {
        let engine = cluster(shards);
        // Cold caches.
        let cold = engine.run_batch(&jobs);
        assert_results_identical(&format!("{shards}-shard cold"), &reference, &cold);
        // Warm caches: the same batch again, now answered largely from
        // the shards' LRUs (and from replicas the hot tracker spread).
        let warm = engine.run_batch(&jobs);
        assert_results_identical(&format!("{shards}-shard warm"), &reference, &warm);
        // Submission order must not matter either.
        let mut reversed: Vec<BettiJob> = jobs.clone();
        reversed.reverse();
        let mut back = engine.run_batch(&reversed);
        back.reverse();
        assert_results_identical(&format!("{shards}-shard reordered"), &reference, &back);
    }
}

#[test]
fn sharded_slices_replay_through_the_one_shot_pipeline() {
    let jobs = mixed_jobs();
    let engine = cluster(2);
    let results = engine.run_batch(&jobs);
    for (job, result) in jobs.iter().zip(&results) {
        for slice in &result.slices {
            let replay = BettiRequest::of_cloud(&job.cloud)
                .at_scale(slice.epsilon)
                .max_dim(job.max_homology_dim)
                .metric(job.metric)
                .estimator(EstimatorConfig { seed: slice.seed, ..job.estimator })
                .sparse_threshold(job.sparse_threshold)
                .build()
                .run();
            let replay = replay.single_slice();
            assert_eq!(slice.classical, replay.classical, "ε = {}", slice.epsilon);
            for (engine_est, pipeline_est) in slice.estimates.iter().zip(&replay.estimates) {
                assert_estimates_identical(
                    engine_est,
                    pipeline_est,
                    &format!("cluster replay at ε = {}", slice.epsilon),
                );
            }
        }
    }
}

#[test]
fn qos_outcomes_are_bit_identical_across_shard_counts() {
    use qtda_core::query::QosPolicy;
    use qtda_engine::batch::{JobOutcome, JobRequest};

    let jobs = mixed_jobs();
    let requests: Vec<JobRequest> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let qos = match i % 3 {
                0 => QosPolicy::interactive(),
                1 => QosPolicy::default(),
                _ => QosPolicy::bulk(),
            };
            JobRequest::with_qos(job.clone(), qos).with_ticket(i as u64 + 1)
        })
        .collect();

    let reference: Vec<Arc<JobResult>> =
        cluster(1).run_batch_qos(&requests).into_iter().map(JobOutcome::expect_completed).collect();
    for shards in [2usize, 8] {
        let results: Vec<Arc<JobResult>> = cluster(shards)
            .run_batch_qos(&requests)
            .into_iter()
            .map(JobOutcome::expect_completed)
            .collect();
        assert_results_identical(&format!("{shards}-shard qos"), &reference, &results);
    }
}

#[test]
fn toggling_stealing_and_replication_changes_nothing() {
    let jobs = mixed_jobs();
    let reference = cluster(2).run_batch(&jobs);
    for (stealing, hot_threshold) in [(false, 0u32), (true, 0), (false, 1)] {
        let engine = ClusterEngine::new(ClusterConfig {
            engine: EngineConfig {
                batch_seed: BATCH_SEED,
                cache_capacity: 64,
                ..Default::default()
            },
            shards: 2,
            stealing,
            hot_threshold,
            max_run: 1,
            ..Default::default()
        });
        let results = engine.run_batch(&jobs);
        assert_results_identical(
            &format!("stealing={stealing} hot={hot_threshold}"),
            &reference,
            &results,
        );
    }
}
