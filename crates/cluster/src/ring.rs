//! Consistent hashing with replicated virtual nodes.
//!
//! The cluster routes every job by its 64-bit content fingerprint
//! ([`qtda_engine::BettiJob::fingerprint`]), so each shard's LRU owns a
//! **disjoint** slice of the key space — no entry is cached twice, and
//! the aggregate cache behaves like one cache of the summed capacity.
//! Two properties matter:
//!
//! * **Balance** — the max/min shard-load ratio over a large key
//!   population must stay small (pinned ≤ 1.25 by the property tests
//!   at [`DEFAULT_VNODES`] = 64 vnodes).
//! * **Minimal remap** — when the shard count changes, at most ≈ 1/N
//!   of keys may move, and every key that moves must move to (or from)
//!   the shard that appeared (or vanished). This is what makes
//!   resharding a warm operation instead of a cache flush.
//!
//! Each shard contributes [`DEFAULT_VNODES`] virtual nodes whose
//! identity hash depends only on the `(shard, vnode)` pair — never on
//! the shard *count*. A key is owned by the vnode with the **highest
//! combined weight** `mix(key, vnode)` (highest-random-weight over the
//! replicated vnode set). Classic successor-on-a-circle lookup has an
//! inherent ~`1/√vnodes` arc-length variance — measured max/min up to
//! 1.48 at 64 vnodes and 8 shards, blowing the balance gate — whereas
//! the weight-ranked lookup is exactly symmetric across shards, so
//! balance is limited only by sampling noise. Minimal remap is exact:
//! growing N → N+1 only inserts the new shard's vnodes, and a key
//! moves iff one of the *new* vnodes out-weighs its old maximum, so
//! every moved key lands on the new shard (expected fraction exactly
//! 1/(N+1)).
//!
//! Lookup is O(shards · vnodes) integer mixes with no allocation —
//! hundreds of nanoseconds, irrelevant next to a Betti job.

/// Virtual nodes per shard. Routing balance does not depend on this
/// count (weight-ranked lookup is symmetric with any number), but the
/// replicated-vnode structure is what a weighted tier extends — a
/// shard with more vnodes wins proportionally more keys.
pub const DEFAULT_VNODES: usize = 64;

/// `splitmix64` — the finalising mix used for vnode identities, key
/// positions, and combined weights. Full-avalanche, dependency-free,
/// and stable across platforms (routing must never drift between
/// builds — shard LRU contents depend on it).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Salt folded into key positions so a key's mix input is never the
/// raw fingerprint the engine also uses for cache keys and seeds.
const KEY_SALT: u64 = 0x7D9A_02F4_51B6_C3E8;

/// A consistent-hash ring mapping 64-bit fingerprints onto shard
/// indices `0..shards`.
#[derive(Clone, Debug)]
pub struct HashRing {
    shards: usize,
    /// `(vnode identity hash, shard)` — one entry per virtual node.
    /// Identity depends only on the `(shard, vnode)` pair, which is
    /// exactly the minimal-remap property.
    vnodes: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over `shards` shards with `vnodes` virtual nodes each.
    /// `shards` must be non-zero; a single-shard ring routes everything
    /// to shard 0 (and is still constructed, so the N=1 cluster takes
    /// the same code path as any other N).
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a hash ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let vnodes = (0..shards)
            .flat_map(|shard| {
                (0..vnodes).map(move |v| (splitmix64(((shard as u64) << 32) ^ v as u64), shard))
            })
            .collect();
        HashRing { shards, vnodes }
    }

    /// A ring with [`DEFAULT_VNODES`] virtual nodes per shard.
    pub fn with_default_vnodes(shards: usize) -> Self {
        Self::new(shards, DEFAULT_VNODES)
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `fingerprint`: the shard of the vnode with the
    /// highest combined weight for this key (ties broken towards the
    /// higher shard index — deterministic either way).
    pub fn route(&self, fingerprint: u64) -> usize {
        let key = splitmix64(fingerprint ^ KEY_SALT);
        self.vnodes
            .iter()
            .map(|&(identity, shard)| (splitmix64(key ^ identity), shard))
            .max()
            .expect("ring has at least one vnode")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let ring = HashRing::with_default_vnodes(1);
        for fp in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(ring.route(fp), 0);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = HashRing::with_default_vnodes(4);
        let b = HashRing::with_default_vnodes(4);
        for fp in 0..1000u64 {
            assert_eq!(a.route(fp.wrapping_mul(0x9E37)), b.route(fp.wrapping_mul(0x9E37)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = HashRing::with_default_vnodes(0);
    }
}
