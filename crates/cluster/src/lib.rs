//! Sharded multi-engine serving tier for QTDA Betti serving.
//!
//! One process-wide `BatchEngine` caps throughput at one arena, one
//! LRU, one worker pool. This crate scales that out: a
//! [`ClusterEngine`] owns N engine shards and routes every submission
//! by consistent-hashing its content fingerprint onto a
//! replicated-vnode [`HashRing`], so each shard's LRU owns a disjoint
//! key space and the aggregate cache behaves like one cache of the
//! summed capacity. Two mechanisms keep the shards busy and the tails
//! flat:
//!
//! * **QoS-aware work stealing** — an idle shard steals whole queued
//!   jobs from the most backlogged queue (Interactive first, never
//!   splitting a job's arena) and runs them on the *owner's* engine,
//!   so dispatch rebalances without moving the key space.
//! * **Hot-key replication** — a [`HotKeyTracker`] promotes viral
//!   fingerprints to route round-robin and cache everywhere, so one
//!   shard never serialises the whole cluster's favourite query.
//!
//! Betti results are content-pure and every shard derives its
//! estimator seeds from the same `batch_seed`, so the N-shard answer
//! is **bit-identical** to the single-engine answer — for any N, with
//! stealing and replication on or off. Shards are threads today; the
//! routing layer is transport-agnostic (queued tasks are owned data
//! plus a result channel) so shards can sit behind a socket protocol
//! later.

#![deny(missing_docs)]
#![deny(deprecated)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod hotkey;
pub mod ring;

pub use engine::{plan_steal, ClusterConfig, ClusterEngine};
pub use hotkey::HotKeyTracker;
pub use ring::{HashRing, DEFAULT_VNODES};
