//! The sharded cluster engine: N [`BatchEngine`] shards behind a
//! consistent-hash router, with QoS-aware work stealing and hot-key
//! replication.
//!
//! # Architecture
//!
//! ```text
//!        submit (JobRequest, fingerprint fp)
//!                       │
//!              ┌────────▼────────┐
//!              │   HashRing /    │   hot fp?  → round-robin
//!              │  HotKeyTracker  │   cold fp? → ring.route(fp)
//!              └────────┬────────┘
//!          ┌────────────┼────────────┐
//!       queue 0      queue 1      queue 2       (dispatch queues)
//!          │            │            │
//!       shard 0      shard 1      shard 2       (threads today)
//!       engine 0     engine 1     engine 2      (disjoint LRUs)
//!                └── steal: idle shard takes whole queued jobs
//!                    from the most backlogged queue; the job still
//!                    runs on the OWNING shard's engine ──┘
//! ```
//!
//! Each shard is a long-lived thread owning a dispatch queue; jobs are
//! routed onto queues by consistent-hashing their content fingerprint
//! ([`crate::ring`]), so every shard's LRU owns a disjoint key space
//! and nothing is cached twice. The routing layer is deliberately
//! transport-agnostic — a [`Task`](self) is plain owned data plus a
//! result channel, so the same router can front socket-attached shards
//! later without touching the hashing, stealing, or replication logic.
//!
//! **Work stealing** rebalances *dispatch*, never *data*: an idle
//! shard pops whole queued jobs (a job's arena is never split) from
//! the most backlogged queue, Interactive class first, and runs them
//! on the **owner's** engine. The owner's LRU still absorbs the
//! results, so stealing changes which thread burns the CPU but not
//! where the key space lives — aggregate hit rates are unaffected.
//!
//! **Hot-key replication** ([`crate::hotkey`]) lifts viral
//! fingerprints out of their home shard: once promoted, a key routes
//! round-robin and each shard computes-and-caches its own replica on
//! its own engine.
//!
//! # Bit-identity
//!
//! The N-shard answer equals the single-engine answer byte for byte,
//! for any N, stealing on or off, replication on or off. This is free
//! by construction — every shard engine shares one `batch_seed`, and
//! all estimator seeds are derived from `(batch_seed, job fingerprint,
//! ε-index, dimension)` (see `qtda_engine::seed`), so *which* engine
//! computes a job cannot reach the numbers. The cluster determinism
//! suite pins it anyway.

use qtda_core::query::Priority;
use qtda_engine::batch::{
    BatchEngine, EngineConfig, EngineStats, JobOutcome, JobRequest, SliceEvent, SliceSink,
};
use qtda_engine::BettiJob;
#[cfg(feature = "obs")]
use qtda_obs::events::EventKind;
use qtda_obs::events::FlightRecorder;
use qtda_obs::metrics::{Counter, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::hotkey::HotKeyTracker;
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Cluster parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Per-shard engine configuration. Every shard gets the **same**
    /// config — in particular the same `batch_seed`, which is what
    /// makes shard placement invisible in the results.
    pub engine: EngineConfig,
    /// Number of engine shards (`0` is clamped to 1).
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Whether idle shards steal queued jobs from backlogged ones.
    pub stealing: bool,
    /// Sightings at which a fingerprint is promoted to
    /// replicate-everywhere routing (`0` disables hot-key replication).
    pub hot_threshold: u32,
    /// Most jobs a shard pops from its queue per engine run. Keeping
    /// this small leaves backlog visible on the queue where an idle
    /// shard can steal it, at the cost of smaller in-batch dedup scope.
    pub max_run: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            engine: EngineConfig::default(),
            shards: 2,
            vnodes: DEFAULT_VNODES,
            stealing: true,
            hot_threshold: 0,
            max_run: 4,
        }
    }
}

/// One queued dispatch unit: an owned request plus everything needed
/// to deliver its results back to the submitter. Plain data — no
/// references into the submitting thread — which is what keeps the
/// routing layer transport-agnostic.
struct Task {
    request: JobRequest,
    /// Only read by the obs event stamps today, but part of the task's
    /// wire shape either way (a socket transport would carry it).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    fingerprint: u64,
    /// The shard whose engine must run this job (its LRU owns the key
    /// space slice). A thief executes the task but never re-homes it.
    owner: usize,
    /// Index of the request in the submitter's batch.
    index: usize,
    done: Sender<ClusterMsg>,
}

/// Result traffic from a shard back to a blocked submitter.
enum ClusterMsg {
    /// A slice of request `index` completed (streams in completion
    /// order, exactly like [`BatchEngine::run_batch_streaming_qos`]).
    Slice { index: usize, slice_index: usize, result: qtda_engine::batch::SliceResult },
    /// Request `index` was abandoned mid-batch.
    Aborted { index: usize, reason: qtda_core::query::AbortReason },
    /// Request `index` resolved; always the last message for an index.
    Outcome { index: usize, outcome: JobOutcome },
}

/// The dispatch queues, guarded by one mutex (pushes and pops are
/// pointer shuffles; the heavy work happens outside the lock).
struct ClusterState {
    queues: Vec<VecDeque<Task>>,
    closed: bool,
}

/// Everything the shard threads share with the router.
struct Shared {
    engines: Vec<Arc<BatchEngine>>,
    state: Mutex<ClusterState>,
    work: Condvar,
    /// Per-shard liveness, cleared by the shard thread's drop guard on
    /// any exit path (including panic) — the `/ready` probe input.
    alive: Vec<AtomicBool>,
    /// Per-shard kill switches (test hook; see
    /// [`ClusterEngine::debug_kill_shard`]).
    kill: Vec<AtomicBool>,
    stealing: bool,
    max_run: usize,
    recorder: Arc<FlightRecorder>,
    /// `qtda_cluster_steals_total{shard=thief}` cells.
    steals: Vec<Counter>,
}

/// Clears the shard's `alive` flag on every exit path, unwinding
/// included, so a dead shard cannot keep reporting ready.
struct AliveGuard {
    shared: Arc<Shared>,
    me: usize,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.shared.alive[self.me].store(false, Ordering::Release);
    }
}

/// N [`BatchEngine`] shards behind a consistent-hash router with
/// QoS-aware work stealing and hot-key replication. See the module
/// docs for the architecture; the public surface mirrors
/// [`BatchEngine`] (`run_batch`, `run_batch_qos`,
/// `run_batch_streaming_qos`), so callers swap tiers without changing
/// shape.
pub struct ClusterEngine {
    config: ClusterConfig,
    shared: Arc<Shared>,
    ring: HashRing,
    hot: HotKeyTracker,
    /// Round-robin cursor for promoted fingerprints.
    hot_rr: AtomicUsize,
    registry: Arc<MetricsRegistry>,
    /// `qtda_cluster_routed_total{shard=}` cells.
    routed: Vec<Counter>,
    hot_promotions: Counter,
    threads: Vec<JoinHandle<()>>,
}

impl ClusterEngine {
    /// A cluster with its own private [`MetricsRegistry`] and no
    /// flight recorder.
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_observability(config, Arc::new(MetricsRegistry::new()), None)
    }

    /// A cluster publishing every shard's `qtda_engine_*` series into
    /// the **one** caller-owned registry, each under its own
    /// `shard=` label (same family names, disjoint label sets), plus
    /// the cluster's own `qtda_cluster_*` counters. The optional
    /// [`FlightRecorder`] receives `shard_route` and `steal` events
    /// from the router and the usual engine events from every shard.
    pub fn with_observability(
        config: ClusterConfig,
        registry: Arc<MetricsRegistry>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let shards = config.shards.max(1);
        let recorder = recorder.unwrap_or_else(|| Arc::new(FlightRecorder::disabled()));
        let engines: Vec<Arc<BatchEngine>> = (0..shards)
            .map(|i| {
                let label = i.to_string();
                Arc::new(BatchEngine::with_observability_labels(
                    config.engine,
                    Arc::clone(&registry),
                    Some(Arc::clone(&recorder)),
                    &[("shard", &label)],
                ))
            })
            .collect();
        let routed = (0..shards)
            .map(|i| {
                registry.counter_with("qtda_cluster_routed_total", &[("shard", &i.to_string())])
            })
            .collect();
        let steals = (0..shards)
            .map(|i| {
                registry.counter_with("qtda_cluster_steals_total", &[("shard", &i.to_string())])
            })
            .collect();
        let hot_promotions = registry.counter("qtda_cluster_hot_promotions_total");
        let shared = Arc::new(Shared {
            engines,
            state: Mutex::new(ClusterState {
                queues: (0..shards).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            work: Condvar::new(),
            alive: (0..shards).map(|_| AtomicBool::new(true)).collect(),
            kill: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            stealing: config.stealing,
            max_run: config.max_run.max(1),
            recorder,
            steals,
        });
        let threads = (0..shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qtda-cluster-shard-{i}"))
                    .spawn(move || shard_loop(shared, i))
                    .expect("spawn cluster shard thread")
            })
            .collect();
        ClusterEngine {
            config,
            shared,
            ring: HashRing::new(shards, config.vnodes),
            hot: HotKeyTracker::new(config.hot_threshold),
            hot_rr: AtomicUsize::new(0),
            registry,
            routed,
            hot_promotions,
            threads,
        }
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shared.engines.len()
    }

    /// Shard `i`'s engine (panics out of range).
    pub fn shard_engine(&self, i: usize) -> &Arc<BatchEngine> {
        &self.shared.engines[i]
    }

    /// Shard `i`'s serving counters (its own `shard=`-labelled cells).
    pub fn shard_stats(&self, i: usize) -> EngineStats {
        self.shared.engines[i].stats()
    }

    /// Cluster-wide serving counters: the per-shard stats summed
    /// field-wise, except `arena_bytes_peak` (a high-water mark — the
    /// max across shards is the honest cluster figure).
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for engine in &self.shared.engines {
            let s = engine.stats();
            total.jobs_served += s.jobs_served;
            total.batches_served += s.batches_served;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.cache_evictions += s.cache_evictions;
            total.deduplicated += s.deduplicated;
            total.computed_jobs += s.computed_jobs;
            total.units_executed += s.units_executed;
            total.units_last_batch += s.units_last_batch;
            total.units_cancelled += s.units_cancelled;
            total.jobs_cancelled += s.jobs_cancelled;
            total.jobs_deadline_expired += s.jobs_deadline_expired;
            total.served_interactive += s.served_interactive;
            total.served_normal += s.served_normal;
            total.served_bulk += s.served_bulk;
            total.arenas_built += s.arenas_built;
            total.slices_assembled_incrementally += s.slices_assembled_incrementally;
            total.arena_bytes_peak = total.arena_bytes_peak.max(s.arena_bytes_peak);
            total.arena_bytes_live += s.arena_bytes_live;
        }
        total
    }

    /// The shared registry holding every shard's labelled series.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The flight recorder the router and every shard stamp into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.shared.recorder
    }

    /// `true` while every shard thread is alive — the cluster's
    /// contribution to the service `/ready` probe.
    pub fn is_ready(&self) -> bool {
        self.shared.alive.iter().all(|a| a.load(Ordering::Acquire))
    }

    /// The home shard the ring assigns `fingerprint` (ignores hot-key
    /// promotion). Exposed so tests and examples can craft skewed
    /// workloads deterministically.
    pub fn route_of(&self, fingerprint: u64) -> usize {
        self.ring.route(fingerprint)
    }

    /// Kills shard `i`'s thread at its next dispatch-loop check — a
    /// test hook for readiness plumbing. Jobs already queued on the
    /// dead shard are only rescued if stealing is enabled; do not
    /// submit after killing shards outside of tests.
    #[doc(hidden)]
    pub fn debug_kill_shard(&self, i: usize) {
        self.shared.kill[i].store(true, Ordering::Release);
        let _unused = self.shared.state.lock().expect("cluster state poisoned");
        self.shared.work.notify_all();
    }

    /// Serves a batch, returning one result per job in input order —
    /// [`BatchEngine::run_batch`]'s shape, bit-identical to it.
    pub fn run_batch(&self, jobs: &[BettiJob]) -> Vec<Arc<qtda_engine::batch::JobResult>> {
        let requests: Vec<JobRequest> = jobs.iter().cloned().map(JobRequest::new).collect();
        self.run_batch_qos(&requests).into_iter().map(JobOutcome::expect_completed).collect()
    }

    /// Serves QoS-carrying requests across the shards, blocking until
    /// every request resolves. Outcome order matches input order.
    pub fn run_batch_qos(&self, requests: &[JobRequest]) -> Vec<JobOutcome> {
        self.run_batch_streaming_qos(requests, &|_| {})
    }

    /// [`Self::run_batch_qos`] with the incremental-completion hook:
    /// slices stream from whichever shard computes them, in completion
    /// order, with `job_index` referring to the submitted batch. The
    /// calling thread pumps the results channel, so the sink runs on
    /// the caller (unlike [`BatchEngine`], where workers invoke it) —
    /// same events, same payloads, different thread.
    pub fn run_batch_streaming_qos(
        &self,
        requests: &[JobRequest],
        sink: &SliceSink<'_>,
    ) -> Vec<JobOutcome> {
        if requests.is_empty() {
            return Vec::new();
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let shards = self.shard_count();
        let mut tasks: Vec<Task> = Vec::with_capacity(requests.len());
        for (index, request) in requests.iter().enumerate() {
            let fingerprint = request.job.fingerprint();
            let was_hot = self.hot.is_hot(fingerprint);
            let hot = self.hot.note(fingerprint);
            if hot && !was_hot {
                self.hot_promotions.inc();
            }
            let shard = if hot && shards > 1 {
                self.hot_rr.fetch_add(1, Ordering::Relaxed) % shards
            } else {
                self.ring.route(fingerprint)
            };
            self.routed[shard].inc();
            self.record_route(request.ticket, fingerprint, shard, hot);
            tasks.push(Task {
                request: request.clone(),
                fingerprint,
                owner: shard,
                index,
                done: tx.clone(),
            });
        }
        drop(tx);
        {
            let mut state = self.shared.state.lock().expect("cluster state poisoned");
            for task in tasks {
                state.queues[task.owner].push_back(task);
            }
        }
        self.shared.work.notify_all();

        // Pump results on the calling thread until every request has
        // resolved. A receive error means a shard died holding our
        // senders — surface it loudly rather than hanging.
        let mut outcomes: Vec<Option<JobOutcome>> = (0..requests.len()).map(|_| None).collect();
        let mut remaining = requests.len();
        while remaining > 0 {
            match rx.recv() {
                Ok(ClusterMsg::Slice { index, slice_index, result }) => {
                    sink(SliceEvent::Slice { job_index: index, slice_index, result });
                }
                Ok(ClusterMsg::Aborted { index, reason }) => {
                    sink(SliceEvent::Aborted { job_index: index, reason });
                }
                Ok(ClusterMsg::Outcome { index, outcome }) => {
                    outcomes[index] = Some(outcome);
                    remaining -= 1;
                }
                Err(_) => panic!("a cluster shard died with requests in flight"),
            }
        }
        outcomes.into_iter().map(|o| o.expect("every index resolves exactly once")).collect()
    }

    #[cfg(feature = "obs")]
    fn record_route(&self, ticket: u64, fingerprint: u64, shard: usize, hot: bool) {
        if self.shared.recorder.is_enabled() {
            let detail = if hot {
                format!("shard={shard},hot=replicated")
            } else {
                format!("shard={shard}")
            };
            self.shared.recorder.record(EventKind::ShardRoute, ticket, fingerprint, detail);
        }
    }

    #[cfg(not(feature = "obs"))]
    fn record_route(&self, _ticket: u64, _fingerprint: u64, _shard: usize, _hot: bool) {}
}

impl Drop for ClusterEngine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("cluster state poisoned");
            state.closed = true;
        }
        self.shared.work.notify_all();
        for handle in self.threads.drain(..) {
            // A panicked shard already surfaced through the results
            // channel; don't double-panic in drop.
            let _unused = handle.join();
        }
    }
}

/// Scheduling rank: lower runs (and steals) first.
fn class_rank(priority: Priority) -> usize {
    match priority {
        Priority::Interactive => 0,
        Priority::Normal => 1,
        Priority::Bulk => 2,
    }
}

/// The snake_case class name used in event details.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
fn class_name(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Normal => "normal",
        Priority::Bulk => "bulk",
    }
}

/// Plans a steal from a victim queue holding jobs of the given
/// priority classes (queue order): which queue positions the thief
/// takes. Steals `ceil(len/2)` capped at `max_run`, preferring
/// Interactive, then Normal, then Bulk, FIFO within a class — and
/// always **whole positions**: a job is stolen or left, never split
/// (a job's arena lives and dies on one engine). Returned indices are
/// ascending. Public so the property suite can pin these invariants
/// directly against arbitrary queue contents.
pub fn plan_steal(classes: &[Priority], max_run: usize) -> Vec<usize> {
    let take = classes.len().div_ceil(2).min(max_run);
    let mut order: Vec<usize> = (0..classes.len()).collect();
    // Stable sort keeps FIFO order inside each class.
    order.sort_by_key(|&i| class_rank(classes[i]));
    order.truncate(take);
    order.sort_unstable();
    order
}

/// Pops up to `max_run` tasks from the front of shard `me`'s own
/// queue.
fn pop_own(state: &mut ClusterState, me: usize, max_run: usize) -> Option<Vec<Task>> {
    if state.queues[me].is_empty() {
        return None;
    }
    let n = state.queues[me].len().min(max_run);
    Some(state.queues[me].drain(..n).collect())
}

/// Steals from the most backlogged other queue (ties to the lowest
/// shard index). Returns the victim index and the stolen tasks.
fn pop_steal(state: &mut ClusterState, me: usize, max_run: usize) -> Option<(usize, Vec<Task>)> {
    let victim = (0..state.queues.len())
        .filter(|&j| j != me && !state.queues[j].is_empty())
        .max_by_key(|&j| (state.queues[j].len(), std::cmp::Reverse(j)))?;
    let classes: Vec<Priority> =
        state.queues[victim].iter().map(|t| t.request.qos.priority).collect();
    let picks = plan_steal(&classes, max_run);
    // Remove back-to-front so earlier indices stay valid.
    let mut stolen: Vec<Task> = picks
        .iter()
        .rev()
        .map(|&i| state.queues[victim].remove(i).expect("steal index in range"))
        .collect();
    stolen.reverse();
    Some((victim, stolen))
}

/// One shard's dispatch loop: run own queued jobs first (up to
/// `max_run` per engine call, so backlog stays visible to thieves),
/// otherwise steal, otherwise sleep on the condvar.
fn shard_loop(shared: Arc<Shared>, me: usize) {
    let _guard = AliveGuard { shared: Arc::clone(&shared), me };
    loop {
        let grabbed = {
            let mut state = shared.state.lock().expect("cluster state poisoned");
            loop {
                if shared.kill[me].load(Ordering::Acquire) {
                    return;
                }
                if let Some(tasks) = pop_own(&mut state, me, shared.max_run) {
                    break Some((me, tasks));
                }
                if shared.stealing {
                    if let Some((victim, tasks)) = pop_steal(&mut state, me, shared.max_run) {
                        break Some((victim, tasks));
                    }
                }
                if state.closed {
                    return;
                }
                state = shared.work.wait(state).expect("cluster state poisoned");
            }
        };
        let Some((owner, tasks)) = grabbed else { return };
        if owner != me {
            shared.steals[me].add(tasks.len() as u64);
            record_steals(&shared, owner, me, &tasks);
        }
        run_tasks(&shared, owner, tasks);
        // Waking peers matters after a *steal*: the victim's queue may
        // still hold work another idle shard went to sleep over.
        shared.work.notify_all();
    }
}

#[cfg(feature = "obs")]
fn record_steals(shared: &Shared, owner: usize, thief: usize, tasks: &[Task]) {
    if shared.recorder.is_enabled() {
        for task in tasks {
            shared.recorder.record(
                EventKind::Steal,
                task.request.ticket,
                task.fingerprint,
                format!("from={owner},to={thief},class={}", class_name(task.request.qos.priority)),
            );
        }
    }
}

#[cfg(not(feature = "obs"))]
fn record_steals(_shared: &Shared, _owner: usize, _thief: usize, _tasks: &[Task]) {}

/// Runs a popped batch on the owner's engine and forwards every
/// streamed event plus the final outcomes to the submitters.
fn run_tasks(shared: &Shared, owner: usize, tasks: Vec<Task>) {
    let mut requests: Vec<JobRequest> = Vec::with_capacity(tasks.len());
    let mut meta: Vec<(usize, Sender<ClusterMsg>)> = Vec::with_capacity(tasks.len());
    for task in tasks {
        requests.push(task.request);
        meta.push((task.index, task.done));
    }
    let forward = |event: SliceEvent| match event {
        SliceEvent::Slice { job_index, slice_index, result } => {
            let (index, done) = &meta[job_index];
            let _unused = done.send(ClusterMsg::Slice { index: *index, slice_index, result });
        }
        SliceEvent::Aborted { job_index, reason } => {
            let (index, done) = &meta[job_index];
            let _unused = done.send(ClusterMsg::Aborted { index: *index, reason });
        }
    };
    let outcomes = shared.engines[owner].run_batch_streaming_qos(&requests, &forward);
    for (outcome, (index, done)) in outcomes.into_iter().zip(meta) {
        let _unused = done.send(ClusterMsg::Outcome { index, outcome });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_plan_prefers_interactive_and_keeps_fifo() {
        use Priority::{Bulk, Interactive, Normal};
        let classes = [Bulk, Normal, Interactive, Bulk, Interactive, Normal];
        // ceil(6/2) = 3 picks: both Interactives (FIFO: 2 then 4),
        // then the first Normal (1) — returned ascending.
        assert_eq!(plan_steal(&classes, 4), vec![1, 2, 4]);
    }

    #[test]
    fn steal_plan_caps_at_max_run() {
        let classes = [Priority::Bulk; 10];
        assert_eq!(plan_steal(&classes, 3).len(), 3, "ceil(10/2)=5 capped to max_run");
        assert_eq!(plan_steal(&classes, 3), vec![0, 1, 2], "FIFO within one class");
    }

    #[test]
    fn steal_plan_takes_whole_positions_only() {
        let classes = [Priority::Normal; 5];
        let picks = plan_steal(&classes, 8);
        assert_eq!(picks.len(), 3, "ceil(5/2)");
        let mut deduped = picks.clone();
        deduped.dedup();
        assert_eq!(picks, deduped, "every pick is a distinct whole queue position");
        assert!(picks.iter().all(|&i| i < classes.len()));
    }
}
