//! Hot-key detection: a sighting counter that promotes viral
//! fingerprints to replicate-everywhere routing.
//!
//! Consistent hashing gives each shard a disjoint LRU key space — the
//! right default, but it serialises *every* request for one
//! fingerprint onto one shard. A genuinely viral key (the same window
//! requested by thousands of clients) then turns its owner into a
//! hotspot while the other shards idle. The [`HotKeyTracker`] watches
//! per-fingerprint sighting counts; once a key crosses the threshold
//! it is **promoted**: the cluster routes it round-robin across all
//! shards and each shard computes-and-caches its own replica. The
//! first request per shard is a miss (it warms that shard's LRU);
//! every later sighting hits locally wherever it lands. Results are
//! unaffected — all shards derive the same content-keyed seeds, so a
//! replica is bit-identical to the owner's answer.
//!
//! The table is bounded: when it reaches capacity every count is
//! halved and zeroes dropped (a crude aging scheme that keeps genuinely
//! hot keys hot while one-shot traffic decays away), so memory stays
//! O(capacity) no matter how adversarial the key stream is.

use std::collections::HashMap;
use std::sync::Mutex;

/// Default bound on tracked fingerprints before an aging sweep.
const DEFAULT_CAPACITY: usize = 4096;

/// The bounded sighting counter. One per cluster; interior-mutable so
/// the routing path can note sightings through a shared reference.
#[derive(Debug)]
pub struct HotKeyTracker {
    /// Promotion threshold; `0` disables tracking entirely.
    threshold: u32,
    capacity: usize,
    counts: Mutex<HashMap<u64, u32>>,
}

impl HotKeyTracker {
    /// A tracker promoting keys at `threshold` sightings (`0` disables
    /// hot-key replication — [`Self::note`] always answers `false`).
    pub fn new(threshold: u32) -> Self {
        Self::with_capacity(threshold, DEFAULT_CAPACITY)
    }

    /// [`Self::new`] with an explicit table bound (tests use tiny
    /// bounds to exercise the aging sweep).
    pub fn with_capacity(threshold: u32, capacity: usize) -> Self {
        HotKeyTracker { threshold, capacity: capacity.max(1), counts: Mutex::new(HashMap::new()) }
    }

    /// Records one sighting of `fingerprint` and reports whether the
    /// key is now (or already was) hot. Saturating; a key never cools
    /// below the threshold once promoted unless aging halves it back
    /// under.
    pub fn note(&self, fingerprint: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut counts = self.counts.lock().expect("hot-key table poisoned");
        if counts.len() >= self.capacity && !counts.contains_key(&fingerprint) {
            // Aging sweep: halve everything, drop the zeroes. Hot keys
            // survive (their halved counts stay over threshold within
            // one more sighting); one-shot keys vanish, making room.
            counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        let count = counts.entry(fingerprint).or_insert(0);
        *count = count.saturating_add(1);
        *count >= self.threshold
    }

    /// Whether `fingerprint` is currently at or over the threshold,
    /// without recording a sighting.
    pub fn is_hot(&self, fingerprint: u64) -> bool {
        self.threshold != 0
            && self
                .counts
                .lock()
                .expect("hot-key table poisoned")
                .get(&fingerprint)
                .is_some_and(|&c| c >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_at_threshold() {
        let tracker = HotKeyTracker::new(3);
        assert!(!tracker.note(7));
        assert!(!tracker.note(7));
        assert!(tracker.note(7), "third sighting crosses the threshold");
        assert!(tracker.is_hot(7));
        assert!(!tracker.is_hot(8));
    }

    #[test]
    fn zero_threshold_disables_tracking() {
        let tracker = HotKeyTracker::new(0);
        for _ in 0..100 {
            assert!(!tracker.note(1));
        }
        assert!(!tracker.is_hot(1));
    }

    #[test]
    fn aging_keeps_hot_keys_and_drops_cold_ones() {
        let tracker = HotKeyTracker::with_capacity(2, 4);
        for _ in 0..8 {
            tracker.note(42); // count 8 — decisively hot
        }
        // Fill the table to capacity with one-shot keys, then one more
        // distinct key forces the aging sweep.
        for fp in [1u64, 2, 3] {
            tracker.note(fp);
        }
        tracker.note(4);
        assert!(tracker.is_hot(42), "hot key survives the halving sweep");
        assert!(!tracker.is_hot(1), "one-shot keys decay away");
    }
}
