//! Quickstart: the whole stack in one file.
//!
//! Builds the paper's Appendix-A complex, computes its combinatorial
//! Laplacian, estimates β₁ with the QPE estimator and checks it against
//! the classical value. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qtda::core::estimator::{BettiEstimator, EstimatorConfig};
use qtda::tda::betti::betti_numbers;
use qtda::tda::complex::worked_example_complex;
use qtda::tda::laplacian::combinatorial_laplacian;
use qtda::tda::simplex::Simplex;

fn main() {
    // --- Simplices (the paper's Fig. 1) -------------------------------
    println!("The first four k-simplices:");
    for k in 0..4u32 {
        let s = Simplex::new((0..=k).collect());
        println!("  {k}-simplex {s}: {} vertices, {} boundary faces", k + 1, s.boundary().len());
    }

    // --- A simplicial complex (the paper's Eq. 13) --------------------
    let complex = worked_example_complex();
    println!("\nWorked-example complex: {complex:?}");
    println!("Euler characteristic χ = {}", complex.euler_characteristic());

    // --- Classical Betti numbers --------------------------------------
    let classical = betti_numbers(&complex);
    println!("Classical Betti numbers: {classical:?}  (one component, one loop)");

    // --- Quantum estimation (QPE on e^{iΔ̃₁}) ---------------------------
    let laplacian = combinatorial_laplacian(&complex, 1);
    let estimator = BettiEstimator::new(EstimatorConfig {
        precision_qubits: 3,
        shots: 1000,
        seed: 7,
        ..EstimatorConfig::default()
    });
    let estimate = estimator.estimate(&laplacian);
    println!(
        "\nQPE estimate of β₁: p̂(0) = {:.4} over {} shots → β̃₁ = {:.4} → rounds to {}",
        estimate.p_zero_sampled,
        estimate.shots,
        estimate.raw,
        estimate.rounded()
    );
    assert_eq!(estimate.rounded(), classical[1], "quantum estimate must match");
    println!("Matches the classical value. ✓");
}
