//! Streaming gearbox serving through `qtda-service`, with QoS.
//!
//! The paper's §5 workload as it actually arrives in production: a
//! producer thread submits sliding-window jobs one at a time (no
//! pre-assembled batch), the service gathers them into deadline
//! micro-batches over its `BatchEngine`, and the consumer prints each
//! window's per-ε slices **as they complete** — before the micro-batch,
//! let alone the whole stream, has finished. Mixed in: an
//! `Interactive` probe (closes its micro-batch early), a `Bulk`
//! re-analysis job (yields the queue, still completes), and a window
//! cancelled mid-stream (`Ticket::cancel` → `Aborted`, arena freed,
//! cache untouched). At the end: the service's micro-batch shapes and
//! abort counters, the engine's cache/unit/QoS counters, per-ticket
//! stage traces (queue wait → linger → arena build → solve →
//! delivery), and the full Prometheus exposition of the shared
//! metrics registry — the submit → stream → cancel → observe →
//! shutdown lifecycle.
//!
//! Run with: `cargo run --release --example streaming_service`

use qtda::core::estimator::EstimatorConfig;
use qtda::data::gearbox::GearboxConfig;
use qtda::data::windows::sliding_window_stream;
use qtda::engine::{window_to_job, EngineConfig, GearboxJobSpec};
use qtda::service::{QosPolicy, QtdaService, ServiceConfig, Telemetry, TicketOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    // 16 distinct windows arriving as a stream, ~1 ms apart.
    let mut rng = StdRng::seed_from_u64(7);
    let windows = sliding_window_stream(&GearboxConfig::default(), 8, 500, 250, &mut rng);
    let spec = GearboxJobSpec {
        estimator: EstimatorConfig { precision_qubits: 4, shots: 1000, ..Default::default() },
        ..GearboxJobSpec::default()
    };

    // Ticket tracing on: every ticket carries a per-stage wall-time
    // breakdown, and the service + engine publish into one registry.
    let service = QtdaService::with_telemetry(
        ServiceConfig {
            engine: EngineConfig { batch_seed: 0xBA7C, ..Default::default() },
            max_batch_size: 8,
            max_linger: Duration::from_millis(4),
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
        Telemetry::with_ticket_traces(),
    );

    let start = Instant::now();
    // The steady stream arrives in the Normal class; every fourth
    // window is a Bulk backfill (it yields the queue but the bounded
    // bypass keeps it flowing).
    let tickets: Vec<_> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            std::thread::sleep(Duration::from_millis(1)); // arrival spacing
            let qos = if i % 4 == 3 { QosPolicy::bulk() } else { QosPolicy::normal() };
            service
                .submit_with(window_to_job(&w.samples, &spec), qos)
                .expect("service accepts while open")
        })
        .collect();
    // An interactive probe jumps the queue and closes its micro-batch
    // early instead of lingering for company.
    let probe = service
        .submit_with(window_to_job(&windows[0].samples, &spec), QosPolicy::interactive())
        .expect("service accepts while open");

    // The last window's consumer loses interest immediately and
    // cancels — pending units are skipped, any arena freed, and
    // nothing partial enters the cache.
    let cancel_index = windows.len() - 1;
    tickets[cancel_index].cancel();
    println!("window {cancel_index:2} cancelled right after submission");

    // Consume: slices stream per ticket as their units complete.
    let mut sample_trace = None;
    for (i, (window, mut ticket)) in windows.iter().zip(tickets).enumerate() {
        let label = if window.label == 0 { "healthy" } else { "fault  " };
        let mut first_slice_at = None;
        while let Some(slice) = ticket.next_slice() {
            first_slice_at.get_or_insert_with(|| start.elapsed());
            println!(
                "window {i:2} ({label}) ε-slice {} @ ε = {:.2}: β̃ = {:?}",
                slice.slice_index,
                slice.result.epsilon,
                slice.result.rounded(),
            );
        }
        if i == 0 {
            sample_trace = ticket.trace();
        }
        match ticket.outcome() {
            TicketOutcome::Completed(result) => println!(
                "window {i:2} ({label}) complete: {} slices, first streamed at {:.1?}",
                result.slices.len(),
                first_slice_at.expect("every job has slices"),
            ),
            TicketOutcome::Aborted(reason) => {
                println!("window {i:2} ({label}) aborted: {reason}")
            }
        }
    }
    let probe_trace = probe.trace();
    let probe_result = probe.wait();
    println!("interactive probe: {} slices (query-jumping class)", probe_result.slices.len());

    // Per-ticket stage breakdowns: where each request's latency went.
    if let Some(trace) = sample_trace {
        println!("\nwindow  0 stage trace:\n{}", trace.render());
    }
    if let Some(trace) = probe_trace {
        println!("interactive probe stage trace:\n{}", trace.render());
    }

    let stats = service.stats();
    println!(
        "\nservice: {} submitted ({} interactive / {} normal / {} bulk) over {} micro-batches \
         (mean {:.1}, largest {}), {} completed, {} cancelled, {} deadline-expired",
        stats.submitted,
        stats.submitted_interactive,
        stats.submitted_normal,
        stats.submitted_bulk,
        stats.batches_formed,
        stats.mean_batch_size(),
        stats.largest_batch,
        stats.completed,
        stats.cancelled,
        stats.deadline_expired,
    );
    let engine = service.engine().stats();
    println!(
        "engine : {} units over {} batches | cache {} hits / {} misses | {} computed",
        engine.units_executed,
        engine.batches_served,
        engine.cache_hits,
        engine.cache_misses,
        engine.computed_jobs,
    );
    println!(
        "qos    : served {} interactive / {} normal / {} bulk | {} units cancelled, \
         {} jobs cancelled, {} deadline-expired | {} arena bytes live after aborts",
        engine.served_interactive,
        engine.served_normal,
        engine.served_bulk,
        engine.units_cancelled,
        engine.jobs_cancelled,
        engine.jobs_deadline_expired,
        engine.arena_bytes_live,
    );

    // One snapshot of the shared registry exposes the whole serving
    // stack — `qtda_service_*` and `qtda_engine_*` families together,
    // including the per-class request-latency histograms — ready to
    // serve on a `/metrics` endpoint.
    println!("\n── /metrics (Prometheus text exposition) ──");
    print!("{}", service.registry().snapshot().to_prometheus());

    // Shutdown drains anything still queued, then joins the batcher.
    service.shutdown();
    println!("shut down cleanly in {:.2?} total", start.elapsed());
}
