//! Streaming gearbox serving through `qtda-service`.
//!
//! The paper's §5 workload as it actually arrives in production: a
//! producer thread submits sliding-window jobs one at a time (no
//! pre-assembled batch), the service gathers them into deadline
//! micro-batches over its `BatchEngine`, and the consumer prints each
//! window's per-ε slices **as they complete** — before the micro-batch,
//! let alone the whole stream, has finished. At the end: the service's
//! micro-batch shapes, the engine's cache/unit counters, and the
//! submit → stream → shutdown lifecycle.
//!
//! Run with: `cargo run --release --example streaming_service`

use qtda::core::estimator::EstimatorConfig;
use qtda::data::gearbox::GearboxConfig;
use qtda::data::windows::sliding_window_stream;
use qtda::engine::{window_to_job, EngineConfig, GearboxJobSpec};
use qtda::service::{QtdaService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    // 16 distinct windows arriving as a stream, ~1 ms apart.
    let mut rng = StdRng::seed_from_u64(7);
    let windows = sliding_window_stream(&GearboxConfig::default(), 8, 500, 250, &mut rng);
    let spec = GearboxJobSpec {
        estimator: EstimatorConfig { precision_qubits: 4, shots: 1000, ..Default::default() },
        ..GearboxJobSpec::default()
    };

    let service = QtdaService::new(ServiceConfig {
        engine: EngineConfig { batch_seed: 0xBA7C, ..Default::default() },
        max_batch_size: 8,
        max_linger: Duration::from_millis(4),
        queue_capacity: 64,
        ..ServiceConfig::default()
    });

    let start = Instant::now();
    let tickets: Vec<_> = windows
        .iter()
        .map(|w| {
            std::thread::sleep(Duration::from_millis(1)); // arrival spacing
            service.submit(window_to_job(&w.samples, &spec)).expect("service accepts while open")
        })
        .collect();

    // Consume: slices stream per ticket as their units complete.
    for (i, (window, mut ticket)) in windows.iter().zip(tickets).enumerate() {
        let label = if window.label == 0 { "healthy" } else { "fault  " };
        let mut first_slice_at = None;
        while let Some(slice) = ticket.next_slice() {
            first_slice_at.get_or_insert_with(|| start.elapsed());
            println!(
                "window {i:2} ({label}) ε-slice {} @ ε = {:.2}: β̃ = {:?}",
                slice.slice_index,
                slice.result.epsilon,
                slice.result.rounded(),
            );
        }
        let result = ticket.wait();
        println!(
            "window {i:2} ({label}) complete: {} slices, first streamed at {:.1?}",
            result.slices.len(),
            first_slice_at.expect("every job has slices"),
        );
    }

    let stats = service.stats();
    println!(
        "\nservice: {} submitted over {} micro-batches (mean {:.1}, largest {}), {} completed",
        stats.submitted,
        stats.batches_formed,
        stats.mean_batch_size(),
        stats.largest_batch,
        stats.completed,
    );
    let engine = service.engine().stats();
    println!(
        "engine : {} units over {} batches | cache {} hits / {} misses | {} computed",
        engine.units_executed,
        engine.batches_served,
        engine.cache_hits,
        engine.cache_misses,
        engine.computed_jobs,
    );

    // Shutdown drains anything still queued, then joins the batcher.
    service.shutdown();
    println!("shut down cleanly in {:.2?} total", start.elapsed());
}
