//! Streaming gearbox serving through `qtda-service`, with QoS.
//!
//! The paper's §5 workload as it actually arrives in production: a
//! producer thread submits sliding-window jobs one at a time (no
//! pre-assembled batch), the service gathers them into deadline
//! micro-batches over its `BatchEngine`, and the consumer prints each
//! window's per-ε slices **as they complete** — before the micro-batch,
//! let alone the whole stream, has finished. Mixed in: an
//! `Interactive` probe (closes its micro-batch early), a `Bulk`
//! re-analysis job (yields the queue, still completes), and a window
//! cancelled mid-stream (`Ticket::cancel` → `Aborted`, arena freed,
//! cache untouched). The backend is the **2-shard cluster tier**:
//! every submission is consistent-hash routed onto one of two engine
//! shards with disjoint LRU key spaces, a deliberately skewed Bulk
//! burst (all ten jobs homed on one shard) shows the idle shard
//! stealing whole queued jobs, and the results stay bit-identical to
//! single-engine serving throughout. The whole run is live on the
//! **ops surface**: a
//! scrape server bound on loopback answers `/metrics`, `/health`,
//! `/ready` and the flight-recorder dumps while the stream is in
//! flight (the example scrapes itself over real TCP to prove it), a
//! rolling window ticks in the background, and an SLO with fast/slow
//! burn-rate windows watches interactive latency. At the end: the
//! service's micro-batch shapes and abort counters, the engine's
//! cache/unit/QoS counters, per-ticket stage traces, the windowed p95
//! and SLO verdicts, the tail of the flight-recorder journal (including
//! the cancelled window's auto-captured submit→abort chain), and the
//! full Prometheus exposition — the submit → stream → cancel →
//! observe → shutdown lifecycle.
//!
//! Run with: `cargo run --release --example streaming_service`

use qtda::core::estimator::EstimatorConfig;
use qtda::data::gearbox::GearboxConfig;
use qtda::data::windows::sliding_window_stream;
use qtda::engine::{window_to_job, BettiJob, EngineConfig, GearboxJobSpec};
use qtda::service::{
    EventKind, QosPolicy, QtdaService, RollingWindow, ServiceConfig, Slo, SloTracker, Telemetry,
    TicketOutcome, WindowConfig,
};
use qtda::tda::point_cloud::PointCloud;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 16 distinct windows arriving as a stream, ~1 ms apart.
    let mut rng = StdRng::seed_from_u64(7);
    let windows = sliding_window_stream(&GearboxConfig::default(), 8, 500, 250, &mut rng);
    let spec = GearboxJobSpec {
        estimator: EstimatorConfig { precision_qubits: 4, shots: 1000, ..Default::default() },
        ..GearboxJobSpec::default()
    };

    // Ticket tracing on, plus a flight recorder: every ticket carries a
    // per-stage wall-time breakdown, the service + engine publish into
    // one registry, and every submit/batch/unit/abort stamps a
    // structured event into a bounded journal.
    let mut telemetry = Telemetry::with_flight_recorder(1 << 12);
    telemetry.trace_tickets = true;
    let registry = Arc::clone(&telemetry.registry);
    let service = QtdaService::with_telemetry(
        ServiceConfig {
            engine: EngineConfig { batch_seed: 0xBA7C, ..Default::default() },
            shards: 2, // the cluster tier: 2 engine shards, one registry
            max_batch_size: 8,
            max_linger: Duration::from_millis(4),
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
        telemetry,
    );

    // The ops surface, live for the whole run: a scrape server on an
    // ephemeral loopback port, and a rolling window ticking every 25 ms
    // in the background so windowed rates/quantiles and SLO burn rates
    // are available while traffic is still flowing.
    let server = service.serve_ops("127.0.0.1:0").expect("bind ops server");
    println!("ops surface live on http://{}/metrics", server.local_addr());
    let window = Arc::new(RollingWindow::new(
        registry.clone(),
        WindowConfig { cadence: Duration::from_millis(25), slots: 400 },
    ));
    let driver = window.spawn();
    let mut slos = SloTracker::new(Arc::clone(&window), registry);
    slos.track(
        Slo::latency_quantile(
            "interactive-p95",
            "qtda_service_request_seconds",
            &[("class", "interactive")],
            0.95,
            0.1,
        )
        .with_windows(Duration::from_millis(100), Duration::from_secs(1)),
    );
    slos.track(Slo::event_ratio(
        "abort-ratio",
        "qtda_service_cancelled_total",
        "qtda_service_submitted_total",
        0.25,
    ));

    let start = Instant::now();
    // The steady stream arrives in the Normal class; every fourth
    // window is a Bulk backfill (it yields the queue but the bounded
    // bypass keeps it flowing).
    let tickets: Vec<_> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            std::thread::sleep(Duration::from_millis(1)); // arrival spacing
            let qos = if i % 4 == 3 { QosPolicy::bulk() } else { QosPolicy::normal() };
            service
                .submit_with(window_to_job(&w.samples, &spec), qos)
                .expect("service accepts while open")
        })
        .collect();
    // An interactive probe jumps the queue and closes its micro-batch
    // early instead of lingering for company.
    let probe = service
        .submit_with(window_to_job(&windows[0].samples, &spec), QosPolicy::interactive())
        .expect("service accepts while open");

    // The last window's consumer loses interest immediately and
    // cancels — pending units are skipped, any arena freed, and
    // nothing partial enters the cache.
    let cancel_index = windows.len() - 1;
    tickets[cancel_index].cancel();
    println!("window {cancel_index:2} cancelled right after submission");

    // Consume: slices stream per ticket as their units complete.
    let mut sample_trace = None;
    for (i, (window, mut ticket)) in windows.iter().zip(tickets).enumerate() {
        let label = if window.label == 0 { "healthy" } else { "fault  " };
        let mut first_slice_at = None;
        while let Some(slice) = ticket.next_slice() {
            first_slice_at.get_or_insert_with(|| start.elapsed());
            println!(
                "window {i:2} ({label}) ε-slice {} @ ε = {:.2}: β̃ = {:?}",
                slice.slice_index,
                slice.result.epsilon,
                slice.result.rounded(),
            );
        }
        if i == 0 {
            sample_trace = ticket.trace();
        }
        match ticket.outcome() {
            TicketOutcome::Completed(result) => println!(
                "window {i:2} ({label}) complete: {} slices, first streamed at {:.1?}",
                result.slices.len(),
                first_slice_at.expect("every job has slices"),
            ),
            TicketOutcome::Aborted(reason) => {
                println!("window {i:2} ({label}) aborted: {reason}")
            }
        }
    }
    let probe_trace = probe.trace();
    let probe_result = probe.wait();
    println!("interactive probe: {} slices (query-jumping class)", probe_result.slices.len());

    // ── The cluster tier under deliberate skew ───────────────────────
    // Ten Bulk jobs all homed (by ring probe) on shard 0, submitted
    // back-to-back: shard 0 runs its first `max_run` chunk, shard 1 —
    // idle — steals whole queued jobs from the backlog. Whoever runs
    // them, seeds derive from content, so the answers don't move.
    let cluster = service.cluster().expect("shards = 2 runs the cluster backend");
    let skewed: Vec<BettiJob> = (0..u64::MAX)
        .map(probe_job)
        .filter(|j| cluster.route_of(j.fingerprint()) == 0)
        .take(10)
        .collect();
    let burst: Vec<_> = skewed
        .into_iter()
        .map(|job| service.submit_with(job, QosPolicy::bulk()).expect("service accepts"))
        .collect();
    for ticket in burst {
        let _ = ticket.outcome();
    }

    // Per-ticket stage breakdowns: where each request's latency went.
    if let Some(trace) = sample_trace {
        println!("\nwindow  0 stage trace:\n{}", trace.render());
    }
    if let Some(trace) = probe_trace {
        println!("interactive probe stage trace:\n{}", trace.render());
    }

    let stats = service.stats();
    println!(
        "\nservice: {} submitted ({} interactive / {} normal / {} bulk) over {} micro-batches \
         (mean {:.1}, largest {}), {} completed, {} cancelled, {} deadline-expired",
        stats.submitted,
        stats.submitted_interactive,
        stats.submitted_normal,
        stats.submitted_bulk,
        stats.batches_formed,
        stats.mean_batch_size(),
        stats.largest_batch,
        stats.completed,
        stats.cancelled,
        stats.deadline_expired,
    );
    let engine = cluster.stats(); // aggregate across both shards
    println!(
        "engine : {} units over {} batches | cache {} hits / {} misses | {} computed",
        engine.units_executed,
        engine.batches_served,
        engine.cache_hits,
        engine.cache_misses,
        engine.computed_jobs,
    );
    // Per-shard view, read back from the ONE shared registry: each
    // shard's engine publishes the same series under a `shard` label.
    let snap = service.registry().snapshot();
    for shard in 0..cluster.shard_count() {
        let labels = [("shard", shard.to_string())];
        let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let served = snap.counter_with("qtda_engine_jobs_served_total", &labels);
        let hits = snap.counter_with("qtda_engine_cache_hits_total", &labels);
        let misses = snap.counter_with("qtda_engine_cache_misses_total", &labels);
        let routed = snap.counter_with("qtda_cluster_routed_total", &labels);
        let steals = snap.counter_with("qtda_cluster_steals_total", &labels);
        println!(
            "shard {shard}: {routed} routed, {served} served | cache {hits} hits / {misses} \
             misses ({:.0}% hit rate) | {steals} jobs stolen from peers",
            100.0 * hits as f64 / (hits + misses).max(1) as f64,
        );
    }
    println!(
        "qos    : served {} interactive / {} normal / {} bulk | {} units cancelled, \
         {} jobs cancelled, {} deadline-expired | {} arena bytes live after aborts",
        engine.served_interactive,
        engine.served_normal,
        engine.served_bulk,
        engine.units_cancelled,
        engine.jobs_cancelled,
        engine.jobs_deadline_expired,
        engine.arena_bytes_live,
    );

    // Windowed view + SLO verdicts: what a dashboard would show for
    // the last second of serving, evaluated from the ticking window.
    window.tick(); // fold the freshest delta in before reading
    let p95 = window.quantile(
        "qtda_service_request_seconds",
        &[("class", "interactive")],
        0.95,
        Duration::from_secs(1),
    );
    let rate = window.rate("qtda_service_submitted_total", Duration::from_secs(1));
    match p95 {
        Some(p95) => println!(
            "\nwindow : interactive p95 ≈ {:.1} ms over the last 1 s, {rate:.1} submits/s",
            p95 * 1e3
        ),
        None => println!("\nwindow : no interactive traffic in the last 1 s ({rate:.1} submits/s)"),
    }
    for status in slos.evaluate() {
        println!(
            "slo    : {:<16} {} (fast {:?}, slow {:?})",
            status.name,
            if status.firing { "FIRING" } else { "ok" },
            status.fast_value,
            status.slow_value,
        );
    }

    // The flight recorder joined every layer's stamps into one journal;
    // the cancelled window auto-captured its submit→abort chain.
    let recorder = service.flight_recorder().expect("recorder configured").clone();
    let journal = recorder.dump_jsonl();
    let events = journal.lines().count();
    println!("\n── flight recorder: last 5 of {events} events (JSONL) ──");
    for line in journal.lines().skip(events.saturating_sub(5)) {
        println!("{line}");
    }
    if let Some(abort) = recorder.last_abort_dump() {
        println!("── auto-captured abort chain (also at /abort.jsonl) ──");
        print!("{abort}");
    }
    // The skewed burst's steal hops, straight from the same journal:
    // `shard_route` put the job on its home shard, `steal` records the
    // idle shard taking it whole off the backlog.
    let steals: Vec<_> =
        recorder.events().into_iter().filter(|e| e.kind == EventKind::Steal).collect();
    println!("── steal hops in the journal ({} total) ──", steals.len());
    if let Some(stolen) = steals.first() {
        for event in recorder.events_for_ticket(stolen.ticket) {
            if matches!(event.kind, EventKind::Submit | EventKind::ShardRoute | EventKind::Steal) {
                println!("{}", event.to_json());
            }
        }
    }

    // The same exposition every scraper sees — fetched over real TCP
    // from our own ops server, exactly as Prometheus would.
    println!("\n── GET /metrics (scraped over TCP) ──");
    print!("{}", scrape(&server, "/metrics"));

    // Shutdown drains anything still queued, then joins the batcher;
    // the ops server (still up) now answers 503 on /ready.
    drop(driver);
    service.shutdown();
    let ready = scrape_status(&server, "/ready");
    println!("after shutdown, GET /ready → {ready}");
    println!("shut down cleanly in {:.2?} total", start.elapsed());
}

/// A small probe job whose fingerprint varies with `salt` (one
/// coordinate nudged by `salt * 1e-9`) — used to find jobs the ring
/// homes on a chosen shard, so the burst can be deliberately skewed.
fn probe_job(salt: u64) -> BettiJob {
    let shift = salt as f64 * 1e-9;
    let mut coords = Vec::with_capacity(20);
    for i in 0..10 {
        let theta = 2.0 * std::f64::consts::PI * (i as f64) / 10.0;
        coords.push(theta.cos() + shift);
        coords.push(theta.sin());
    }
    let mut job = BettiJob::new(PointCloud::new(2, coords), vec![0.7, 1.1]);
    job.estimator =
        EstimatorConfig { precision_qubits: 4, shots: 800, ..EstimatorConfig::default() };
    job
}

/// Scrapes our own ops server over TCP, returning the response body.
fn scrape(server: &qtda::service::ScrapeServer, path: &str) -> String {
    let response = raw_get(server, path);
    response.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or_default()
}

/// Like [`scrape`], but returns only the status line.
fn scrape_status(server: &qtda::service::ScrapeServer, path: &str) -> String {
    raw_get(server, path).lines().next().unwrap_or_default().to_string()
}

fn raw_get(server: &qtda::service::ScrapeServer, path: &str) -> String {
    let mut stream =
        std::net::TcpStream::connect(server.local_addr()).expect("connect to ops server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: qtda\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    response
}
