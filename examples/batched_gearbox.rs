//! Batched gearbox serving through `qtda-engine`.
//!
//! Models the paper's §5 workload as serving traffic: a stream of
//! 500-sample vibration windows is Takens-embedded into small point
//! clouds and served as [`BettiJob`]s — {β̃₀, β̃₁} on a 3-scale ε-grid
//! per window — through one [`BatchEngine`]. The demo shows the three
//! things the engine adds over per-cloud calls: in-batch dedup, the
//! cross-batch LRU cache, and slice-level replayability.
//!
//! Run with: `cargo run --release --example batched_gearbox`

use qtda::core::estimator::EstimatorConfig;
use qtda::core::query::BettiRequest;
use qtda::data::gearbox::GearboxConfig;
use qtda::data::windows::sliding_window_stream;
use qtda::engine::{jobs_from_windows, BatchEngine, EngineConfig, GearboxJobSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A stream of 40 distinct windows (20 per class), each queried twice
    // — e.g. a classifier and a dashboard both asking for features.
    let mut rng = StdRng::seed_from_u64(7);
    let windows = sliding_window_stream(&GearboxConfig::default(), 20, 500, 250, &mut rng);
    let spec = GearboxJobSpec {
        estimator: EstimatorConfig { precision_qubits: 4, shots: 1000, ..Default::default() },
        ..GearboxJobSpec::default()
    };
    let distinct = jobs_from_windows(&windows, &spec);
    let requests: Vec<_> = distinct.iter().chain(&distinct).cloned().collect();

    let engine = BatchEngine::new(EngineConfig { batch_seed: 0xBA7C, ..Default::default() });
    let t = Instant::now();
    let results = engine.run_batch(&requests);
    let first_batch = t.elapsed();
    println!(
        "batch 1: {} requests served in {:.2?} ({} computed, {} deduplicated)",
        requests.len(),
        first_batch,
        engine.stats().computed_jobs,
        engine.stats().deduplicated,
    );

    // The same traffic again: everything is in the LRU now.
    let t = Instant::now();
    let _ = engine.run_batch(&requests);
    println!(
        "batch 2: {} requests served in {:.2?} ({} cache hits so far)",
        requests.len(),
        t.elapsed(),
        engine.stats().cache_hits,
    );

    // The full serving counters: cache behaviour and batch shapes.
    let stats = engine.stats();
    println!(
        "engine stats: {} jobs over {} batches | cache {} hits / {} misses / {} evictions | \
         {} deduplicated, {} computed | {} units total, {} in the last batch \
         ({:.1} mean units/batch)",
        stats.jobs_served,
        stats.batches_served,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.deduplicated,
        stats.computed_jobs,
        stats.units_executed,
        stats.units_last_batch,
        stats.mean_units_per_batch(),
    );
    println!(
        "arena stats: {} filtration arenas built, {} units served as incremental prefix \
         reads, peak {:.1} KiB resident",
        stats.arenas_built,
        stats.slices_assembled_incrementally,
        stats.arena_bytes_peak as f64 / 1024.0,
    );
    println!(
        "qos stats  : served {} interactive / {} normal / {} bulk | {} units cancelled, \
         {} jobs cancelled, {} deadline-expired",
        stats.served_interactive,
        stats.served_normal,
        stats.served_bulk,
        stats.units_cancelled,
        stats.jobs_cancelled,
        stats.jobs_deadline_expired,
    );

    // Mean per-class features at the middle scale: the fault scatters
    // the attractor, which the Betti features pick up.
    let mid = spec.epsilons.len() / 2;
    for (label, name) in [(0u8, "healthy"), (1, "fault  ")] {
        let rows: Vec<Vec<f64>> = windows
            .iter()
            .zip(&results)
            .filter(|(w, _)| w.label == label)
            .map(|(_, r)| r.slices[mid].features())
            .collect();
        let dims = rows[0].len();
        let mean: Vec<f64> =
            (0..dims).map(|k| rows.iter().map(|r| r[k]).sum::<f64>() / rows.len() as f64).collect();
        println!(
            "{name} @ ε = {:.2}: mean β̃₀ = {:.2}, mean β̃₁ = {:.2}",
            spec.epsilons[mid], mean[0], mean[1]
        );
    }

    // Replayability: any slice reproduces through the one-shot pipeline
    // at the slice's published seed, bit for bit.
    let job = &requests[0];
    let slice = &results[0].slices[mid];
    let replay = BettiRequest::of_cloud(&job.cloud)
        .at_scale(slice.epsilon)
        .max_dim(job.max_homology_dim)
        .metric(job.metric)
        .estimator(EstimatorConfig { seed: slice.seed, ..job.estimator })
        .sparse_threshold(job.sparse_threshold)
        .build()
        .run();
    let identical = slice
        .features()
        .iter()
        .zip(replay.single_slice().features())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "replay of job 0 @ ε = {:.2} with seed {:#x}: bit-identical = {identical}",
        slice.epsilon, slice.seed
    );
    assert!(identical);
}
