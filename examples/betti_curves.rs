//! Multi-scale Betti curves — the bridge from the paper's single-ε
//! estimates toward its persistent-Betti future work (§6).
//!
//! Sweeps the grouping scale over a noisy circle and compares **four**
//! independent estimates of β₁(ε):
//!
//! 1. classical exact (rank–nullity),
//! 2. the persistence barcode,
//! 3. the QPE estimator (this paper's algorithm),
//! 4. the classical stochastic Chebyshev–Hutchinson baseline
//!    (the paper's reference [15]).
//!
//! ```text
//! cargo run --release --example betti_curves
//! ```

use qtda::core::estimator::{BettiEstimator, EstimatorConfig};
use qtda::tda::betti::betti_numbers;
use qtda::tda::filtration::Filtration;
use qtda::tda::laplacian::combinatorial_laplacian;
use qtda::tda::persistence::compute_barcode;
use qtda::tda::point_cloud::{synthetic, Metric};
use qtda::tda::rips::{rips_complex, RipsParams};
use qtda::tda::spectral_betti::{betti_stochastic, SpectralBettiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let cloud = synthetic::circle(16, 1.0, 0.04, &mut rng);
    let barcode = compute_barcode(&Filtration::rips(&cloud, 1.6, 2, Metric::Euclidean));
    let estimator = BettiEstimator::new(EstimatorConfig {
        precision_qubits: 7,
        shots: 20_000,
        seed: 5,
        ..EstimatorConfig::default()
    });

    println!("β₁(ε) of a 16-point noisy circle, four estimators:\n");
    println!("   ε     exact  barcode  QPE (β̃₁)  stochastic");
    let mut agree = true;
    for step in 0..=10 {
        let eps = 0.2 + 0.12 * step as f64;
        let complex = rips_complex(&cloud, &RipsParams::new(eps, 2));
        let exact = betti_numbers(&complex).get(1).copied().unwrap_or(0);
        let from_barcode = barcode.betti_at(1, eps);
        let qpe = if complex.count(1) == 0 {
            0.0
        } else {
            estimator.estimate(&combinatorial_laplacian(&complex, 1)).corrected
        };
        // Near the loop's birth scale the Laplacian has *small positive*
        // eigenvalues; the classical estimator needs a sharp step (high
        // degree, tight gap) to avoid counting them as kernel — exactly
        // the role precision qubits play for QPE.
        let stochastic = betti_stochastic(
            &complex,
            1,
            &SpectralBettiParams { degree: 400, probes: 64, gap: 0.05 },
            &mut rng,
        );
        println!("{eps:6.2} {exact:^7} {from_barcode:^8} {qpe:^10.3} {stochastic:^10.3}");
        agree &= from_barcode == exact
            && (qpe - exact as f64).abs() < 0.5
            && (stochastic.round() - exact as f64).abs() < 1.5;
    }
    assert!(agree, "estimators disagreed somewhere");
    println!("\nAll four estimators trace the same Betti curve: the loop is born");
    println!("once neighbours connect and dies when chords fill the triangles. ✓");
}
