//! End-to-end point-cloud pipeline on clouds with known topology:
//! a noisy circle (β = 1, 1), a figure-eight (β = 1, 2) and two clusters
//! (β = 2, 0), each run through Rips → Laplacians → QPE estimation.
//!
//! ```text
//! cargo run --release --example betti_pipeline
//! ```

use qtda::core::estimator::EstimatorConfig;
use qtda::core::pipeline::PipelineConfig;
use qtda::core::query::BettiRequest;
use qtda::tda::point_cloud::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let scenarios = [
        ("noisy circle", synthetic::circle(14, 1.0, 0.03, &mut rng), 0.55),
        ("figure eight", synthetic::figure_eight(12, 1.0, 0.0, &mut rng), 0.55),
        ("two clusters", synthetic::two_clusters(7, 4.0, 0.4, &mut rng), 1.3),
    ];

    for (name, cloud, epsilon) in scenarios {
        let config = PipelineConfig {
            epsilon,
            max_homology_dim: 1,
            estimator: EstimatorConfig {
                precision_qubits: 7,
                shots: 20_000,
                seed: 99,
                ..EstimatorConfig::default()
            },
            ..PipelineConfig::default()
        };
        let output = BettiRequest::of_cloud(&cloud).configured(&config).build().run();
        let complex = output.complex.as_ref().expect("single-scale query builds the complex");
        let result = output.single_slice();
        println!("— {name} ({} points, ε = {epsilon}) —", cloud.len());
        println!(
            "  complex: {} vertices, {} edges, {} triangles",
            complex.count(0),
            complex.count(1),
            complex.count(2)
        );
        println!("  classical β = {:?}", result.classical);
        println!(
            "  quantum  β̃ = {:?}  (raw features {:?})",
            result.rounded(),
            result.features().iter().map(|f| format!("{f:.3}")).collect::<Vec<_>>()
        );
        println!(
            "  absolute errors: {:?}\n",
            result.absolute_errors().iter().map(|e| format!("{e:.3}")).collect::<Vec<_>>()
        );
        assert_eq!(result.rounded(), result.classical, "{name} estimate mismatch");
    }
    println!("All three scenarios recovered their known topology. ✓");
}
