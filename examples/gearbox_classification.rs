//! The paper's §5 machine-diagnostics workload: classify gearbox
//! vibration windows as healthy vs surface-fault using QPE-estimated
//! Betti numbers as the only features.
//!
//! Pipeline per window (500 samples): normalise → Takens embedding →
//! Rips complex → {β̃₀, β̃₁} via QPE → logistic regression.
//!
//! ```text
//! cargo run --release --example gearbox_classification
//! ```

use qtda::core::estimator::EstimatorConfig;
use qtda::core::pipeline::PipelineConfig;
use qtda::core::query::BettiRequest;
use qtda::data::gearbox::GearboxConfig;
use qtda::data::windows::{balanced_windows, WINDOW_LEN};
use qtda::ml::dataset::Dataset;
use qtda::ml::logistic::{LogisticConfig, LogisticRegression};
use qtda::ml::scaler::StandardScaler;
use qtda::ml::split::train_test_split;
use qtda::tda::takens::{takens_embedding, TakensParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 17;
    let per_class = 40;
    let mut rng = StdRng::seed_from_u64(seed);
    // High-SNR accelerometer channel: cleaner carrier, stronger fault
    // impulses (see DESIGN.md §2).
    let signal =
        GearboxConfig { noise_std: 0.15, fault_amplitude: 3.5, ..GearboxConfig::default() };
    println!("Generating {} synthetic gearbox windows of {WINDOW_LEN} samples…", 2 * per_class);
    let windows = balanced_windows(&signal, per_class, WINDOW_LEN, &mut rng);

    println!("Embedding (Takens d=3, τ=3, stride=12) and estimating Betti features…");
    let mut features = Vec::with_capacity(windows.len());
    let mut labels = Vec::with_capacity(windows.len());
    for (i, w) in windows.iter().enumerate() {
        let rms = (w.samples.iter().map(|v| v * v).sum::<f64>() / w.samples.len() as f64)
            .sqrt()
            .max(1e-9);
        let normalised: Vec<f64> = w.samples.iter().map(|v| v / rms).collect();
        let cloud =
            takens_embedding(&normalised, &TakensParams { dimension: 3, delay: 3, stride: 12 });
        let config = PipelineConfig {
            epsilon: 1.0,
            max_homology_dim: 1,
            estimator: EstimatorConfig {
                precision_qubits: 6,
                shots: 2000,
                seed: seed ^ ((i as u64) << 13),
                ..EstimatorConfig::default()
            },
            ..PipelineConfig::default()
        };
        features.push(
            BettiRequest::of_cloud(&cloud)
                .configured(&config)
                .build()
                .run()
                .single_slice()
                .features(),
        );
        labels.push(w.label);
    }

    // Mean feature per class — the topology the classifier sees.
    for (class, name) in [(0u8, "healthy"), (1u8, "fault")] {
        let rows: Vec<&Vec<f64>> =
            features.iter().zip(&labels).filter(|(_, &l)| l == class).map(|(f, _)| f).collect();
        let mean0 = rows.iter().map(|r| r[0]).sum::<f64>() / rows.len() as f64;
        let mean1 = rows.iter().map(|r| r[1]).sum::<f64>() / rows.len() as f64;
        println!("  {name:<8}: mean β̃₀ = {mean0:.2}, mean β̃₁ = {mean1:.2}");
    }

    let data = Dataset::new(features, labels);
    let (train, val) = train_test_split(&data, 0.2, true, &mut rng);
    let (train_s, val_s, _) = StandardScaler::fit_transform_pair(&train, &val);
    let model = LogisticRegression::fit(&train_s, &LogisticConfig::default());
    println!(
        "\nLogistic regression on {{β̃₀, β̃₁}} (20%/80% split): train {:.3}, validation {:.3}",
        model.accuracy(&train_s),
        model.accuracy(&val_s)
    );
    println!("(paper reports 100% validation accuracy on the real SEU windows)");
}
