//! Persistent homology (the paper's §6 future-work item, implemented):
//! computes the Rips barcode of a noisy circle, prints the bars, and
//! shows that barcode Betti numbers agree with the rank–nullity values
//! at every scale.
//!
//! ```text
//! cargo run --release --example persistence_barcodes
//! ```

use qtda::tda::betti::betti_numbers;
use qtda::tda::filtration::Filtration;
use qtda::tda::persistence::compute_barcode;
use qtda::tda::point_cloud::{synthetic, Metric};
use qtda::tda::rips::{rips_complex, RipsParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let cloud = synthetic::circle(18, 1.0, 0.05, &mut rng);
    let max_eps = 2.2;

    let filtration = Filtration::rips(&cloud, max_eps, 2, Metric::Euclidean);
    println!(
        "Rips filtration of an 18-point noisy circle: {} simplices up to ε = {max_eps}",
        filtration.len()
    );
    let barcode = compute_barcode(&filtration);

    for dim in 0..=1usize {
        println!("\nH{dim} bars (persistence ≥ 0.05):");
        let mut bars: Vec<_> = barcode.significant(dim, 0.05);
        bars.sort_by(|a, b| b.persistence().partial_cmp(&a.persistence()).unwrap());
        for bar in bars {
            let death = bar.death.map_or("∞".to_string(), |d| format!("{d:.3}"));
            let len = bar.persistence().min(max_eps);
            let blocks = (len / max_eps * 40.0).round() as usize;
            println!("  [{:>6.3}, {death:>6})  {}", bar.birth, "█".repeat(blocks.max(1)));
        }
    }

    // The circle's signature: exactly one dominant H1 bar.
    let dominant = barcode.significant(1, 0.5);
    println!("\nDominant H1 bars: {}", dominant.len());
    assert_eq!(dominant.len(), 1, "a circle has one essential loop");

    // Cross-check barcode Betti numbers against rank–nullity at a few scales.
    println!("\nε      β₀(barcode) β₀(rank)  β₁(barcode) β₁(rank)");
    for &eps in &[0.2, 0.4, 0.6, 1.0, 1.6] {
        let complex = rips_complex(&cloud, &RipsParams::new(eps, 2));
        let classical = betti_numbers(&complex);
        let (c0, c1) = (classical[0], classical.get(1).copied().unwrap_or(0));
        let (b0, b1) = (barcode.betti_at(0, eps), barcode.betti_at(1, eps));
        println!("{eps:<6.2} {b0:^11} {c0:^8} {b1:^11} {c1:^8}");
        assert_eq!(b0, c0);
        assert_eq!(b1, c1);
    }
    println!("\nBarcode and rank–nullity agree at every scale. ✓");
}
