//! The sparse-first path on a complex the dense pipeline struggles
//! with: a few hundred 1-simplices, CSR Laplacian assembled straight
//! from the boundary maps, then **one** matvec-only Lanczos
//! decomposition per dimension that yields the QPE estimate and the
//! classical kernel-count cross-check together — no dense matrix is
//! ever materialised.
//!
//! ```text
//! cargo run --release --example sparse_betti
//! ```

use qtda::core::estimator::{BettiEstimator, EstimatorConfig};
use qtda::core::padding::LambdaMaxBound;
use qtda::core::scaling::Delta;
use qtda::core::spectrum::PaddedSpectrum;
use qtda::tda::laplacian::combinatorial_laplacian_sparse;
use qtda::tda::point_cloud::synthetic;
use qtda::tda::rips::{rips_complex, RipsParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let cloud = synthetic::circle(80, 1.0, 0.02, &mut rng);
    let complex = rips_complex(&cloud, &RipsParams::new(0.35, 2));
    println!(
        "Rips complex of an 80-point noisy circle at ε = 0.35: {} vertices, {} edges, {} triangles",
        complex.count(0),
        complex.count(1),
        complex.count(2)
    );

    let config = EstimatorConfig {
        precision_qubits: 7,
        shots: 20_000,
        seed: 3,
        // Power iteration: tighter than Gershgorin, matvec-only (and
        // guarded — a non-converged run falls back to Gershgorin).
        lambda_bound: LambdaMaxBound::PowerIteration { iterations: 100, seed: 1 },
        ..Default::default()
    };
    let estimator = BettiEstimator::new(config);

    for k in 0..=1usize {
        let start = Instant::now();
        let laplacian = combinatorial_laplacian_sparse(&complex, k);
        let n = laplacian.n_rows();
        let density = laplacian.nnz() as f64 / (n * n).max(1) as f64;
        // One full Lanczos run: the padded QPE spectrum *and* the
        // classical β_k = dim ker Δ_k come out of the same pass.
        let spectrum = PaddedSpectrum::of_sparse_laplacian_bounded(
            &laplacian,
            config.padding,
            Delta::Auto,
            7,
            config.lambda_bound,
        );
        let estimate = estimator.estimate_from_spectrum(&spectrum);
        let classical = spectrum.kernel_dim();
        println!(
            "Δ_{k}: {n}×{n}, {:.1}% dense | β̃_{k} = {:.3} → {} (classical {classical}) in {:.0} ms",
            100.0 * density,
            estimate.corrected,
            estimate.rounded(),
            start.elapsed().as_secs_f64() * 1e3,
        );
        assert_eq!(estimate.rounded(), classical, "quantum estimate must match the kernel count");
    }
}
