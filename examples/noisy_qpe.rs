//! NISQ extension (the paper's §6 outlook): how depolarising noise
//! degrades the QTDA estimate. Runs the full gate-level Fig. 6 circuit
//! for the worked example under increasing per-gate Pauli error rates
//! and reports the resulting β̃₁.
//!
//! ```text
//! cargo run --release --example noisy_qpe
//! ```

use qtda::core::backend::StatevectorBackend;
use qtda::core::padding::{pad_laplacian, PaddingScheme};
use qtda::core::scaling::{rescale, Delta};
// (the contrast system below builds its own Laplacian directly)
use qtda::qsim::noise::DepolarizingNoise;
use qtda::tda::complex::worked_example_complex;
use qtda::tda::laplacian::combinatorial_laplacian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let laplacian = combinatorial_laplacian(&worked_example_complex(), 1);
    let padded = pad_laplacian(&laplacian, PaddingScheme::IdentityHalfLambdaMax);
    let h = rescale(&padded, Delta::Auto);
    let precision = 3;
    let circuit = StatevectorBackend::full_circuit(&h, precision);
    let register: Vec<usize> = (0..precision).collect();
    let shots = 400;

    println!(
        "Fig. 6 circuit for the worked example: {} qubits, {} ops, depth {}",
        circuit.n_qubits(),
        circuit.gate_count(),
        circuit.depth()
    );
    println!("true β₁ = 1; ideal β̃₁ ≈ 1.19 (paper). {shots} noisy trajectories per rate.\n");
    println!("error rate p   p̂(0)     β̃₁ = 8·p̂(0)");

    let mut rng = StdRng::seed_from_u64(11);
    for &p in &[0.0, 0.005, 0.02, 0.05, 0.1, 0.2] {
        let noise = DepolarizingNoise::uniform(p);
        let p0 = noise.estimate_p_zero(&circuit, &register, shots, &mut rng);
        println!("{p:<13} {p0:<8.4} {:<8.4}", 8.0 * p0);
    }
    println!("\nβ̃₁ barely moves: under full depolarisation the register goes uniform,");
    println!("p(0) → 1/2³ = 0.125, i.e. β̃₁ → 1.0 — accidentally next to the ideal 1.10.");
    println!("The worked example is *structurally* noise-robust at 3 precision qubits.\n");

    // Contrast: a kernel-free Laplacian (β = 0). Ideal p(0) ≈ 0, so any
    // leakage toward the uniform distribution *fabricates* topology.
    let no_kernel = qtda::linalg::Mat::from_diag(&[2.0, 3.0, 4.0, 5.0]);
    let padded0 = pad_laplacian(&no_kernel, PaddingScheme::IdentityHalfLambdaMax);
    let h0 = rescale(&padded0, Delta::Auto);
    let circuit0 = StatevectorBackend::full_circuit(&h0, precision);
    println!("Contrast system: diag(2,3,4,5), true β = 0 (no kernel).");
    println!("error rate p   p̂(0)     β̃ = 4·p̂(0)");
    for &p in &[0.0, 0.02, 0.05, 0.1, 0.2] {
        let noise = DepolarizingNoise::uniform(p);
        let p0 = noise.estimate_p_zero(&circuit0, &register, shots, &mut rng);
        println!("{p:<13} {p0:<8.4} {:<8.4}", 4.0 * p0);
    }
    println!("\nHere noise *creates* spurious Betti mass — the failure mode the paper's");
    println!("§6 robustness program has to defeat before NISQ deployment.");
}
